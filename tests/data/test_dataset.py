"""Dataset container operations."""

import numpy as np
import pytest

from repro.data.dataset import LabeledImageDataset


def _dataset(n_ads, n_nonads, size=4):
    total = n_ads + n_nonads
    images = np.random.default_rng(0).random(
        (total, 4, size, size)
    ).astype(np.float32)
    labels = np.array([1] * n_ads + [0] * n_nonads, dtype=np.int64)
    metadata = [{"index": i} for i in range(total)]
    return LabeledImageDataset(images, labels, metadata)


class TestValidation:
    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            LabeledImageDataset(np.zeros((3, 4, 4)), np.zeros(3))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(ValueError):
            LabeledImageDataset(
                np.zeros((3, 4, 4, 4)), np.zeros(2, dtype=np.int64)
            )

    def test_rejects_misaligned_metadata(self):
        with pytest.raises(ValueError):
            LabeledImageDataset(
                np.zeros((2, 4, 4, 4)), np.zeros(2, dtype=np.int64),
                [{}],
            )


class TestBalancing:
    def test_caps_majority_class(self):
        data = _dataset(30, 10)
        balanced = data.balanced(seed=0)
        assert balanced.num_ads == 10
        assert balanced.num_nonads == 10

    def test_balanced_keeps_metadata_aligned(self):
        data = _dataset(8, 4)
        balanced = data.balanced(seed=0)
        for i in range(len(balanced)):
            original = balanced.metadata[i]["index"]
            assert np.array_equal(
                balanced.images[i], data.images[original]
            )

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            _dataset(5, 0).balanced()

    def test_deterministic(self):
        data = _dataset(20, 10)
        a = data.balanced(seed=1)
        b = data.balanced(seed=1)
        assert np.array_equal(a.labels, b.labels)


class TestSplit:
    def test_fraction_respected(self):
        data = _dataset(10, 10)
        first, second = data.split(0.75, seed=0)
        assert len(first) == 15
        assert len(second) == 5

    def test_no_overlap(self):
        data = _dataset(10, 10)
        first, second = data.split(0.5, seed=0)
        first_ids = {m["index"] for m in first.metadata}
        second_ids = {m["index"] for m in second.metadata}
        assert not (first_ids & second_ids)
        assert len(first_ids | second_ids) == 20

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            _dataset(4, 4).split(0.0)
        with pytest.raises(ValueError):
            _dataset(4, 4).split(1.0)


class TestConcatenate:
    def test_sizes_add(self):
        merged = LabeledImageDataset.concatenate(
            [_dataset(4, 4), _dataset(2, 2)]
        )
        assert len(merged) == 12

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            LabeledImageDataset.concatenate([])

    def test_metadata_padded_when_missing(self):
        a = _dataset(2, 2)
        b = LabeledImageDataset(
            np.zeros((2, 4, 4, 4), dtype=np.float32),
            np.zeros(2, dtype=np.int64),
        )
        merged = LabeledImageDataset.concatenate([a, b])
        assert len(merged.metadata) == 6


class TestShuffle:
    def test_preserves_content(self):
        data = _dataset(6, 6)
        shuffled = data.shuffled(seed=3)
        assert sorted(m["index"] for m in shuffled.metadata) == list(
            range(12)
        )

    def test_changes_order(self):
        data = _dataset(20, 20)
        shuffled = data.shuffled(seed=3)
        assert [m["index"] for m in shuffled.metadata] != list(range(40))
