"""End-to-end integration: the full pipeline, real model in the loop."""

import pytest

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import BRAVE, CHROMIUM, Renderer
from repro.core import PercivalBlocker
from repro.crawl.phases import run_crawl_phases
from repro.core.config import PercivalConfig
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


@pytest.fixture(scope="module")
def corpus():
    web = SyntheticWeb(WebConfig(seed=77, num_sites=6,
                                 images_per_page=(8, 14)))
    pages = list(web.iter_pages(web.top_sites(6), pages_per_site=1))
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=2))
    return pages, network


class TestInBrowserBlocking:
    """The paper's core loop: decode -> classify -> clear ad buffers."""

    def test_percival_blocks_mostly_ads(self, corpus,
                                        reference_classifier):
        pages, network = corpus
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        renderer = Renderer(CHROMIUM, network)

        blocked_truth = []
        for page in pages:
            truth_by_url = {
                e.url: e.is_ad for e in page.image_elements()
            }
            metrics = renderer.render(page, percival=blocker,
                                      mode="sync")
            assert metrics.images_blocked_by_percival >= 0
            blocked_truth.append(
                (metrics.images_blocked_by_percival,
                 sum(truth_by_url.values()))
            )
        total_blocked = sum(b for b, _ in blocked_truth)
        total_ads = sum(a for _, a in blocked_truth)
        # a trained model blocks a substantial share of the ads
        assert total_blocked > 0.5 * total_ads

    def test_blocked_buffers_are_cleared(self, corpus,
                                         reference_classifier):
        pages, network = corpus
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        from repro.browser.skia import BitmapImage
        page = pages[0]
        ads = [e for e in page.image_elements() if e.is_ad]
        assert ads, "corpus page must contain an ad"
        element = max(
            ads, key=lambda e: (e.ad_spec.cue_strength
                                if e.ad_spec else 0.0),
        )
        image = BitmapImage(network.fetch(element.url))
        bitmap = image.ensure_decoded(
            lambda b, i: blocker.classify_bitmap(b, i)
        )
        if image.blocked:
            assert not bitmap.any()

    def test_percival_on_brave_closes_list_gap(self, corpus,
                                               reference_classifier):
        """PERCIVAL as the last-step layer: it blocks ads the filter
        list misses (unknown networks, first-party serving)."""
        pages, network = corpus
        blocker = PercivalBlocker(reference_classifier,
                                  calibrated_latency_ms=11.0)
        renderer = Renderer(BRAVE, network)
        percival_blocks = 0
        for page in pages:
            metrics = renderer.render(page, percival=blocker,
                                      mode="sync")
            percival_blocks += metrics.images_blocked_by_percival
        assert percival_blocks > 0


class TestCrawlTrainLoop:
    def test_phases_improve_model(self):
        """The §4.4.2 flywheel: accuracy should not degrade across
        phases, and the corpus should grow.

        Precision is pinned to fp32: the assertion is about training
        dynamics, and at this reduced scale (16 px, 120 images) the
        feedback loop is chaotically sensitive to the blocker verdicts
        that drive frame capture — a quantized-verdict perturbation
        reshuffles the phase-2 corpus rather than revealing anything
        about the flywheel.  The quantized inference path itself is
        covered by tests/core/test_precision.py and the benchmarks.
        """
        result = run_crawl_phases(
            num_phases=2, sites_per_phase=4, pages_per_site=2,
            epochs_per_phase=8, seed=5,
            config=PercivalConfig(
                input_size=16, epochs=8,
                num_train_ads=60, num_train_nonads=60,
                precision="fp32",
            ),
        )
        assert len(result.phases) == 2
        assert result.phases[0].frames_captured > 0
        first, last = result.phases[0], result.phases[-1]
        assert last.holdout_accuracy >= first.holdout_accuracy - 0.05
        assert last.corpus_size > first.corpus_size
        assert result.final_classifier is not None

    def test_later_phases_bucket_with_model(self):
        result = run_crawl_phases(
            num_phases=2, sites_per_phase=4, pages_per_site=2,
            epochs_per_phase=8, seed=6,
            config=PercivalConfig(
                input_size=16, epochs=8,
                num_train_ads=60, num_train_nonads=60,
            ),
        )
        # phase 0 bootstraps with truth -> perfect agreement; phase 1
        # buckets with the model -> agreement is measured, not assumed
        assert result.phases[0].bucket_agreement == 1.0
        assert 0.5 < result.phases[1].bucket_agreement <= 1.0
