"""Unit coverage of the snapshot store, the differ facade, and the
``PERCIVAL_DIFF`` knob resolution."""

import pytest

from repro.core.config import (
    PercivalConfig,
    configured_diff_capacity,
    configured_diff_enabled,
)
from repro.diff import (
    FrameDiffer,
    RegionRecord,
    RegionView,
    SnapshotStore,
    content_key_for_payload,
    display_digest,
    resolve_differ,
)


def _view(url="https://a.example/x.png", content_key="ck", **kwargs):
    return RegionView(url=url, content_key=content_key, **kwargs)


class TestContentKey:
    def test_deterministic_and_format_sensitive(self):
        key = content_key_for_payload(b"payload", "PNG")
        assert key == content_key_for_payload(b"payload", "PNG")
        assert key != content_key_for_payload(b"payload", "JPEG")
        assert key != content_key_for_payload(b"other", "PNG")

    def test_display_digest_is_order_sensitive(self):
        a = _view(url="u1")
        b = _view(url="u2")
        assert display_digest([a, b]) != display_digest([b, a])
        assert display_digest([a, b]) == display_digest([a, b])


class TestSnapshotStore:
    def test_get_is_read_only(self):
        """Probes never churn LRU order — only commits move entries."""
        store = SnapshotStore(capacity=2)
        store.commit("s", "p1", [RegionRecord.from_view(_view())])
        store.commit("s", "p2", [RegionRecord.from_view(_view())])
        # probe p1 (would refresh it under a mutating LRU get) ...
        assert store.get("s", "p1") is not None
        store.commit("s", "p3", [RegionRecord.from_view(_view())])
        # ... yet p1 is still the eviction victim
        assert store.get("s", "p1") is None
        assert store.get("s", "p2") is not None
        assert store.stats.evictions == 1

    def test_commit_replaces_and_counts_visits(self):
        store = SnapshotStore()
        store.commit("s", "p", [RegionRecord.from_view(_view(url="u1"))])
        snapshot = store.commit(
            "s", "p", [RegionRecord.from_view(_view(url="u2"))]
        )
        assert snapshot.visits == 2
        assert set(snapshot.regions) == {"u2"}

    def test_upsert_streams_single_regions(self):
        store = SnapshotStore()
        store.upsert_region(
            "s", "p", RegionRecord.from_view(_view(url="u1"), True, 0.9)
        )
        store.upsert_region(
            "s", "p", RegionRecord.from_view(_view(url="u2"), False, 0.1)
        )
        snapshot = store.get("s", "p")
        assert set(snapshot.regions) == {"u1", "u2"}

    def test_refresh_verdict_in_place(self):
        store = SnapshotStore()
        store.commit("s", "p", [RegionRecord.from_view(_view(url="u"))])
        assert not store.get("s", "p").regions["u"].inheritable
        store.refresh_verdict("s", "p", "u", True, 0.8)
        record = store.get("s", "p").regions["u"]
        assert record.inheritable and record.is_ad and record.probability == 0.8

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SnapshotStore(capacity=0)


class TestFrameDiffer:
    def test_recall_requires_matching_content(self):
        differ = FrameDiffer()
        differ.remember(
            "s", "p", RegionRecord.from_view(_view(), True, 0.97)
        )
        hit = differ.recall("s", "p", "https://a.example/x.png", "ck")
        assert hit is not None and hit.is_ad and hit.from_cache
        assert hit.probability == 0.97
        # changed content, unknown url, wrong session: all miss
        assert differ.recall("s", "p", "https://a.example/x.png", "other") is None
        assert differ.recall("s", "p", "https://b.example/y.png", "ck") is None
        assert differ.recall("s2", "p", "https://a.example/x.png", "ck") is None

    def test_recall_ignores_blank_identity(self):
        differ = FrameDiffer()
        assert differ.recall("s", "p", "", "ck") is None
        assert differ.recall("s", "p", "u", "") is None
        assert differ.stats.recalls == 0

    def test_verdictless_records_never_recall(self):
        differ = FrameDiffer()
        differ.store.upsert_region(
            "s", "p", RegionRecord.from_view(_view())
        )
        assert differ.recall("s", "p", "https://a.example/x.png", "ck") is None
        assert differ.stats.recall_hits == 0

    def test_plan_then_commit_inherits_next_visit(self):
        differ = FrameDiffer()
        view = _view()
        first = differ.plan("s", "p", [view])
        assert [v.url for v in first.reclassify] == [view.url]
        differ.commit(
            "s", "p", [RegionRecord.from_view(view, False, 0.2)]
        )
        second = differ.plan("s", "p", [view])
        assert not second.reclassify
        assert [v.url for v, _ in second.inherit] == [view.url]
        assert differ.stats.identical_pages == 1

    def test_store_and_capacity_are_exclusive(self):
        with pytest.raises(ValueError):
            FrameDiffer(store=SnapshotStore(), capacity=4)


class TestDiffKnob:
    def test_env_values(self, monkeypatch):
        for raw, expected in (
            ("", False), ("off", False), ("0", False), ("no", False),
            ("false", False), ("on", True), ("1", True), ("yes", True),
            ("true", True),
        ):
            monkeypatch.setenv("PERCIVAL_DIFF", raw)
            assert configured_diff_enabled(None) is expected
        monkeypatch.setenv("PERCIVAL_DIFF", "maybe")
        with pytest.raises(ValueError):
            configured_diff_enabled(None)

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_DIFF", "on")
        assert configured_diff_enabled(False) is False
        monkeypatch.delenv("PERCIVAL_DIFF")
        assert configured_diff_enabled(True) is True
        assert configured_diff_enabled(None) is False

    def test_capacity_knob(self, monkeypatch):
        monkeypatch.delenv("PERCIVAL_DIFF_CAPACITY", raising=False)
        assert configured_diff_capacity() == 512
        monkeypatch.setenv("PERCIVAL_DIFF_CAPACITY", "16")
        assert configured_diff_capacity() == 16

    def test_resolve_differ(self, monkeypatch):
        config = PercivalConfig()
        monkeypatch.delenv("PERCIVAL_DIFF", raising=False)
        assert resolve_differ(None, config) is None
        monkeypatch.setenv("PERCIVAL_DIFF", "on")
        auto = resolve_differ(None, config)
        assert isinstance(auto, FrameDiffer)
        # False pins off regardless of the environment
        assert resolve_differ(False, config) is None
        instance = FrameDiffer()
        assert resolve_differ(instance, config) is instance
        with pytest.raises(TypeError):
            resolve_differ("on", config)
