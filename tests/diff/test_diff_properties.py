"""Property-based laws of the snapshot differ (hypothesis).

The three laws the incremental re-classification layer stands on:

1. **self-diff is empty** — diffing a snapshot against its own regions
   yields no work of any kind,
2. **round trip** — ``apply_diff(old, tree_diff(old, views))``
   reconstructs exactly the new visit's region map: the diff loses no
   information in either direction,
3. **inheritance never flips a verdict** — for a model that is a pure
   function of region content (PERCIVAL's §3.2 property), every
   verdict the semantic filter inherits equals what re-classifying the
   region would have produced, and non-inheritable records are never
   inherited.
"""

from hypothesis import given, settings, strategies as st

from repro.diff import (
    RegionRecord,
    RegionView,
    SnapshotStore,
    apply_diff,
    semantic_filter,
    tree_diff,
)

#: small pools so URL/content collisions (the interesting cases) are
#: common rather than vanishing
_URLS = [f"https://site.example/r{i}.png" for i in range(8)]
_CONTENT_KEYS = ["k-ad", "k-content", "k-other"]

_view_strategy = st.builds(
    RegionView,
    url=st.sampled_from(_URLS),
    content_key=st.sampled_from(_CONTENT_KEYS),
    x=st.integers(0, 3),
    y=st.integers(0, 3),
    width=st.integers(1, 2),
    height=st.integers(1, 2),
    style_key=st.sampled_from(["s-a", "s-b"]),
)

_views_strategy = st.lists(_view_strategy, max_size=12)


def _model(content_key: str):
    """A deterministic 'classifier': pure function of region content."""
    is_ad = content_key == "k-ad"
    probability = 0.97 if is_ad else 0.03
    return is_ad, probability


def _snapshot_from(views, settled):
    """Commit ``views`` as a snapshot; ``settled`` views carry the
    model's full decision, the rest are verdict-less records."""
    store = SnapshotStore()
    records = []
    for index, view in enumerate(views):
        if index in settled:
            is_ad, probability = _model(view.content_key)
            records.append(RegionRecord.from_view(view, is_ad, probability))
        else:
            records.append(RegionRecord.from_view(view))
    return store.commit("session", "page", records)


@given(views=_views_strategy)
@settings(max_examples=200, deadline=None)
def test_self_diff_is_empty(views):
    snapshot = _snapshot_from(views, settled=set(range(len(views))))
    diff = tree_diff(
        snapshot, [record.view() for record in snapshot.regions.values()]
    )
    assert diff.is_empty
    assert not diff.added and not diff.removed and not diff.changed
    assert not diff.moved and not diff.restyled
    assert diff.delta_regions == 0
    assert len(diff.unchanged) == len(snapshot.regions)


@given(old_views=_views_strategy, new_views=_views_strategy)
@settings(max_examples=200, deadline=None)
def test_apply_diff_round_trip(old_views, new_views):
    snapshot = _snapshot_from(old_views, settled=set())
    diff = tree_diff(snapshot, new_views)
    rebuilt = apply_diff(snapshot.regions, diff)
    assert rebuilt == {view.url: view for view in new_views}


@given(new_views=_views_strategy)
@settings(max_examples=100, deadline=None)
def test_first_visit_round_trip(new_views):
    diff = tree_diff(None, new_views)
    assert diff.first_visit
    assert not diff.is_empty  # a first visit is never "no work"
    assert apply_diff({}, diff) == {view.url: view for view in new_views}


@given(
    old_views=_views_strategy,
    new_views=_views_strategy,
    settled=st.sets(st.integers(0, 11)),
)
@settings(max_examples=200, deadline=None)
def test_inheritance_never_flips_a_verdict(old_views, new_views, settled):
    snapshot = _snapshot_from(old_views, settled=settled)
    diff = tree_diff(snapshot, new_views)
    plan = semantic_filter(diff, snapshot)

    # partition completeness: every current region is planned once
    current = {view.url for view in new_views}
    planned = plan.inherited_urls | {v.url for v in plan.reclassify}
    assert planned == current
    assert plan.total_regions == len(current)

    for view, record in plan.inherit:
        # only full decisions are inheritable, and only for regions
        # whose content is byte-identical to the stored observation
        assert record.inheritable
        assert record.content_key == view.content_key
        decision = record.verdict()
        assert decision is not None and decision.from_cache
        # the law itself: for a content-pure model, the inherited
        # verdict equals what re-classification would have produced
        is_ad, probability = _model(view.content_key)
        assert decision.is_ad == is_ad
        assert decision.probability == probability
