"""Crowd-sourced rule aggregation (§6 deployment)."""

import pytest

from repro.crawl.crowdsource import (
    UserReport,
    aggregate_reports,
    run_crowdsource_simulation,
)
from repro.filterlist.easylist import default_easylist
from repro.filterlist.engine import FilterEngine


class TestAggregateReports:
    def _report(self, user, hosts):
        return UserReport(user_id=user, flagged_hosts=set(hosts))

    def test_consensus_promotes(self):
        reports = [
            self._report(0, {"bad.test"}),
            self._report(1, {"bad.test"}),
            self._report(2, {"bad.test", "lonely.test"}),
        ]
        result = aggregate_reports(reports, min_reporters=3)
        assert result.promoted_rules == ["||bad.test^$image"]
        assert result.rejected_hosts == {"lonely.test": 1}

    def test_single_user_cannot_poison(self):
        """One malicious user reporting a legitimate host never reaches
        the shared list under a >1 consensus threshold."""
        reports = [
            self._report(0, {"victim-cdn.test"}),
            self._report(1, set()),
            self._report(2, set()),
        ]
        result = aggregate_reports(reports, min_reporters=2)
        assert result.promoted_rules == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            aggregate_reports([], min_reporters=0)

    def test_promoted_rules_parse(self):
        reports = [
            self._report(i, {"ads-x.test", "ads-y.test"})
            for i in range(4)
        ]
        result = aggregate_reports(reports, min_reporters=3)
        engine = FilterEngine.from_text("\n".join(result.promoted_rules))
        assert engine.num_network_rules == 2


class TestSimulation:
    def test_end_to_end_promotes_unknown_networks(
        self, reference_classifier
    ):
        result = run_crowdsource_simulation(
            reference_classifier, default_easylist(),
            num_users=5, min_reporters=3, seed=99,
        )
        assert len(result.reports) == 5
        assert all(r.pages_browsed > 0 for r in result.reports)
        # the uncovered networks are seen by many users -> promoted
        promoted = " ".join(result.promoted_rules)
        assert "sponsorly.test" in promoted or "freshads.test" in promoted

    def test_table_renders(self, reference_classifier):
        result = run_crowdsource_simulation(
            reference_classifier, default_easylist(),
            num_users=3, min_reporters=2, seed=98,
        )
        assert "crowd-sourced" in result.to_table()
