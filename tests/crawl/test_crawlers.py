"""Traditional and pipeline crawlers (§4.4)."""

import numpy as np
import pytest

from repro.crawl.dedup import deduplicate
from repro.crawl.pipeline import PipelineCrawler
from repro.crawl.traditional import TraditionalCrawler
from repro.data.dataset import LabeledImageDataset
from repro.filterlist.easylist import default_easylist
from repro.synth.webgen import SyntheticWeb, WebConfig


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb(WebConfig(seed=21, num_sites=6,
                                  images_per_page=(6, 12)))


class TestTraditionalCrawler:
    def test_collects_balanced_dataset(self, web):
        crawler = TraditionalCrawler(web, default_easylist(), seed=0)
        dataset, stats = crawler.crawl(4, pages_per_site=2)
        assert dataset.num_ads == dataset.num_nonads
        assert stats.pages_visited == 8
        assert stats.elements_screenshotted > 0

    def test_race_produces_white_screenshots(self, web):
        crawler = TraditionalCrawler(
            web, default_easylist(), race_probability=1.0, seed=0,
        )
        _, stats = crawler.crawl(4, pages_per_site=1)
        assert stats.white_screenshots > 0

    def test_no_race_no_whites(self, web):
        crawler = TraditionalCrawler(
            web, default_easylist(), race_probability=0.0, seed=0,
        )
        _, stats = crawler.crawl(4, pages_per_site=1)
        assert stats.white_screenshots == 0

    def test_easylist_labels_carry_noise(self, web):
        crawler = TraditionalCrawler(web, default_easylist(), seed=0)
        _, stats = crawler.crawl(6, pages_per_site=2)
        # unknown networks / first-party ads get mislabelled by the list
        assert stats.mislabelled > 0

    def test_blank_detection_removes_whites(self, web):
        crawler = TraditionalCrawler(
            web, default_easylist(), race_probability=1.0,
            blank_detection_rate=1.0, seed=0,
        )
        dataset, stats = crawler.crawl(4, pages_per_site=1)
        assert stats.removed_as_blank > 0
        assert all(not m.get("white") for m in dataset.metadata)


class TestPipelineCrawler:
    def test_captures_every_frame(self, web):
        crawler = PipelineCrawler(web, classifier=None, seed=0)
        _, stats = crawler.crawl(4, pages_per_site=2)
        expected = sum(
            len(p.image_elements())
            for p in web.iter_pages(web.top_sites(4), 2)
        )
        assert stats.frames_captured == expected
        assert stats.white_screenshots == 0

    def test_bootstrap_labels_are_ground_truth(self, web):
        crawler = PipelineCrawler(web, classifier=None, seed=0)
        dataset, _ = crawler.crawl(3, pages_per_site=1)
        truths = np.array([m["truth"] for m in dataset.metadata])
        assert np.array_equal(dataset.labels, truths)

    def test_classifier_buckets_used_when_present(
        self, web, reference_classifier
    ):
        crawler = PipelineCrawler(
            web, classifier=reference_classifier, seed=0,
        )
        dataset, stats = crawler.crawl(2, pages_per_site=1)
        assert (
            stats.bucketed_ads + stats.bucketed_nonads
            == stats.frames_captured
        )
        # buckets mostly agree with ground truth for a trained model
        truths = np.array([m["truth"] for m in dataset.metadata])
        agreement = (dataset.labels == truths).mean()
        assert agreement > 0.85

    def test_dedup_removes_campaign_repeats(self, web):
        crawler = PipelineCrawler(web, classifier=None, seed=0)
        _, stats = crawler.crawl(6, pages_per_site=2)
        assert stats.removed_as_duplicate > 0
        assert 0.0 < stats.useful_fraction < 1.0


class TestDedup:
    def test_exact_duplicates_removed(self):
        images = np.zeros((4, 4, 2, 2), dtype=np.float32)
        images[1] += 1.0
        labels = np.zeros(4, dtype=np.int64)
        data = LabeledImageDataset(images, labels,
                                   [{"i": i} for i in range(4)])
        deduped, removed = deduplicate(data)
        assert removed == 2  # images 0, 2, 3 identical -> keep one
        assert len(deduped) == 2

    def test_first_occurrence_kept(self):
        images = np.stack([
            np.zeros((1, 2, 2), dtype=np.float32),
            np.zeros((1, 2, 2), dtype=np.float32),
        ])
        data = LabeledImageDataset(
            images, np.array([0, 1], dtype=np.int64),
            [{"i": 0}, {"i": 1}],
        )
        deduped, _ = deduplicate(data)
        assert deduped.metadata[0]["i"] == 0
