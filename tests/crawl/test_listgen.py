"""Block-list generation from crawl verdicts (§6 deployment)."""

import pytest

from repro.crawl.listgen import (
    evaluate_list_generation,
    generate_block_list,
)
from repro.filterlist.easylist import default_easylist
from repro.filterlist.engine import FilterEngine
from repro.synth.webgen import SyntheticWeb, WebConfig


@pytest.fixture(scope="module")
def crawl_pages():
    train_web = SyntheticWeb(WebConfig(seed=501, num_sites=10))
    eval_web = SyntheticWeb(WebConfig(seed=502, num_sites=8))
    train_pages = list(
        train_web.iter_pages(train_web.top_sites(10), 2)
    )
    eval_pages = list(eval_web.iter_pages(eval_web.top_sites(8), 2))
    return train_pages, eval_pages


class TestGenerateBlockList:
    def test_generates_rules_for_uncovered_networks(
        self, reference_classifier, crawl_pages
    ):
        train_pages, _ = crawl_pages
        generated = generate_block_list(
            reference_classifier, default_easylist(), train_pages,
        )
        assert generated.rules
        # unknown networks should earn domain rules
        domains = " ".join(generated.domain_rules)
        assert "sponsorly.test" in domains or "freshads.test" in domains

    def test_rules_parse_as_valid_abp(self, reference_classifier,
                                      crawl_pages):
        train_pages, _ = crawl_pages
        generated = generate_block_list(
            reference_classifier, default_easylist(), train_pages,
        )
        engine = FilterEngine.from_text(generated.as_filter_text())
        assert engine.num_network_rules == len(generated.rules)

    def test_publisher_domains_not_nuked(self, reference_classifier,
                                         crawl_pages):
        """First-party promo images must yield path rules, not
        whole-publisher domain rules."""
        train_pages, _ = crawl_pages
        generated = generate_block_list(
            reference_classifier, default_easylist(), train_pages,
        )
        publisher_domains = {p.site_domain for p in train_pages}
        for rule in generated.domain_rules:
            host = rule[2:].split("^")[0]
            assert host not in publisher_domains


class TestEvaluateListGeneration:
    def test_combined_recall_improves(self, reference_classifier,
                                      crawl_pages):
        train_pages, eval_pages = crawl_pages
        report = evaluate_list_generation(
            reference_classifier, default_easylist(),
            train_pages, eval_pages,
        )
        assert report.combined_recall > report.easylist_recall
        assert report.false_block_rate < 0.05
        assert "block-list generation" in report.to_table()
