"""CLI entry point (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_classify_command(self, capsys, reference_classifier):
        assert main(["classify", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "P(ad)" in out

    def test_render_command(self, capsys, reference_classifier):
        assert main(["render", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out

    def test_serve_sim_command(self, capsys, reference_classifier):
        assert main([
            "serve-sim", "--sessions", "3", "--frames", "4",
            "--workers", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "requests submitted" in out
        assert "queue wait p50/p95/p99" in out
        assert "virtual makespan" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("train", "classify", "render", "serve-sim",
                        "crawl"):
            assert command in out
