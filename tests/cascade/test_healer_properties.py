"""Property-based tests of the rule healer's drift-detection ledger.

The satellite claim, stated as an invariant: for *any* sequence of
rule-vs-model comparisons, a rule that disagreed with the model at
least ``invalidate_after`` times is invalidated — permanently — and
its frames route back to the CNN; a rule that never accumulated that
many disagreements is still alive.  Agreements never buy back strikes.
"""

from hypothesis import given, settings, strategies as st

from repro.cascade import CascadeRouter, FrameProvenance
from repro.cascade.healer import RuleHealer
from repro.cascade.rules import (
    ORIGIN_LIST,
    CascadeRule,
    CompiledRuleCache,
)

observations = st.lists(st.booleans(), min_size=0, max_size=40)


@settings(max_examples=60, deadline=None)
@given(agreed_seq=observations, invalidate_after=st.integers(1, 5))
def test_invalidated_iff_strikes_reach_threshold(
    agreed_seq, invalidate_after
):
    cache = CompiledRuleCache()
    healer = RuleHealer(cache, invalidate_after=invalidate_after)
    rule = CascadeRule(key="k", verdict=True, probability=0.99)
    cache._rules["k"] = rule

    for agreed in agreed_seq:
        healer.observe(rule, agreed)

    disagreements = agreed_seq.count(False)
    if disagreements >= invalidate_after:
        assert rule.invalidated
        assert not rule.serving
        assert cache.quarantined_count == 1
        # the ledger froze at the fatal strike: observations after
        # invalidation must not keep counting
        assert rule.disagreements == invalidate_after
    else:
        assert not rule.invalidated
        assert rule.disagreements == disagreements
        assert rule.agreements == agreed_seq.count(True)


@settings(max_examples=60, deadline=None)
@given(agreed_seq=observations, corroboration=st.integers(1, 5))
def test_list_rule_serves_only_after_clean_corroboration(
    agreed_seq, corroboration
):
    cache = CompiledRuleCache()
    healer = RuleHealer(
        cache, corroboration=corroboration, invalidate_after=10_000
    )
    rule = cache.ensure_list_rule("list|k", True, 1.0)
    assert rule.origin == ORIGIN_LIST and not rule.serving

    promoted_at = None
    for index, agreed in enumerate(agreed_seq):
        healer.observe(rule, agreed)
        if rule.serving and promoted_at is None:
            promoted_at = index

    if promoted_at is None:
        # never promoted: either not enough agreements before the
        # first disagreement, or a disagreement poisoned the warmup
        prefix_ok = False
        seen_agree = 0
        for agreed in agreed_seq:
            if not agreed:
                break
            seen_agree += 1
            if seen_agree >= corroboration:
                prefix_ok = True
                break
        assert not prefix_ok
    else:
        # promotion required `corroboration` agreements with a clean
        # record at that moment
        prefix = agreed_seq[: promoted_at + 1]
        assert prefix.count(False) == 0
        assert prefix.count(True) >= corroboration


@settings(max_examples=40, deadline=None)
@given(
    agreed_seq=st.lists(st.booleans(), min_size=2, max_size=30),
    invalidate_after=st.integers(1, 3),
)
def test_invalidated_rules_frames_reroute_to_cnn(
    agreed_seq, invalidate_after
):
    """End-to-end over the router: once the model disagrees often
    enough, the rule stops answering and the frame goes to the CNN
    (route() returns None), forever."""
    router = CascadeRouter(
        None, audit_interval=1, invalidate_after=invalidate_after
    )
    prov = FrameProvenance(
        url="https://ads.example/slot/x.png", page_domain="pub.example"
    )
    from repro.core.blocker import BlockDecision

    router.absorb(
        prov,
        BlockDecision(is_ad=True, probability=0.99, from_cache=False),
    )

    invalidated = False
    for agreed in agreed_seq:
        outcome = router.route(prov)
        if invalidated:
            assert outcome is None  # permanently back on the CNN path
            continue
        # audit_interval=1: every hit of the serving rule is audited
        router.reconcile(outcome, model_is_ad=agreed)
        rule = router.cache.get(prov.micro_key())
        invalidated = rule.invalidated

    rule = router.cache.get(prov.micro_key())
    assert invalidated == (
        agreed_seq[: rule.audits].count(False) >= invalidate_after
        if rule.audits
        else False
    )
