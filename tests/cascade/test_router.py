"""CascadeRouter semantics: tier order, trust model, resolve knob."""

import pytest

from repro.cascade import CascadeAudit, CascadeHit, CascadeRouter, FrameProvenance
from repro.cascade.router import TIER_LIST, TIER_MICRO, resolve_cascade
from repro.core.blocker import BlockDecision
from repro.core.config import PercivalConfig
from repro.filterlist.engine import FilterEngine

AD_URL = "https://ads.example/banner/x.png"
CONTENT_URL = "https://cdn.pub.example/img/cat.jpg"


@pytest.fixture()
def engine():
    return FilterEngine.from_text("\n".join([
        "||ads.example^$third-party",
        "##.ad-box",
    ]))


@pytest.fixture()
def router(engine):
    return CascadeRouter(engine, confidence=0.9)


def _prov(url=CONTENT_URL, page_domain="pub.example", **kwargs):
    return FrameProvenance(url=url, page_domain=page_domain, **kwargs)


def _confident(is_ad, probability=None):
    if probability is None:
        probability = 0.99 if is_ad else 0.01
    return BlockDecision(is_ad=is_ad, probability=probability,
                         from_cache=False)


class TestRouteTiers:
    def test_no_provenance_is_a_pass_through(self, router):
        assert router.route(None) is None
        assert router.stats.routed == 0

    def test_unknown_frame_misses(self, router):
        assert router.route(_prov()) is None
        assert router.stats.misses == 1

    def test_absorbed_verdict_compiles_and_then_serves(self, router):
        prov = _prov()
        router.absorb(prov, _confident(False))
        hit = router.route(prov)
        assert isinstance(hit, CascadeHit)
        assert hit.tier == TIER_MICRO
        assert hit.decision.is_ad is False
        assert hit.decision.from_cache  # no fresh classification
        assert router.stats.micro_hits == 1

    def test_micro_tier_wins_over_filterlist(self, router):
        prov = _prov(url=AD_URL)  # matches ||ads.example^
        router.absorb(prov, _confident(True))
        hit = router.route(prov)
        assert isinstance(hit, CascadeHit)
        assert hit.tier == TIER_MICRO

    def test_list_rule_audits_until_corroborated(self, router):
        prov = _prov(url=AD_URL)
        # first two predictions are audits (corroboration warmup)
        for _ in range(2):
            outcome = router.route(prov)
            assert isinstance(outcome, CascadeAudit)
            assert outcome.tier == TIER_LIST
            assert outcome.predicted is True
            router.reconcile(outcome, model_is_ad=True)
        # promoted: now serves directly
        hit = router.route(prov)
        assert isinstance(hit, CascadeHit)
        assert hit.tier == TIER_LIST
        assert hit.decision.is_ad is True
        assert router.stats.list_hits == 1

    def test_element_hiding_rules_reach_the_list_tier(self, router):
        prov = _prov(css_classes=("ad-box",))
        outcome = router.route(prov)
        assert isinstance(outcome, CascadeAudit)
        assert outcome.tier == TIER_LIST

    def test_router_without_engine_skips_list_tier(self):
        router = CascadeRouter(None)
        assert router.route(_prov(url=AD_URL)) is None


class TestHealing:
    def test_disagreements_invalidate_and_reroute_to_cnn(self, router):
        prov = _prov(url=AD_URL)
        for _ in range(2):
            audit = router.route(prov)
            router.reconcile(audit, model_is_ad=False)  # model disagrees
        assert router.stats.invalidations == 1
        # the frame now goes back to the CNN — not served, not audited
        assert router.route(prov) is None

    def test_invalidation_is_permanent_no_recompile(self, router):
        prov = _prov()
        router.absorb(prov, _confident(False))
        rule = router.cache.get(prov.micro_key())
        # two shadow disagreements via absorb-time comparison
        router.absorb(prov, _confident(True))
        router.absorb(prov, _confident(True))
        assert rule.invalidated
        # the very verdicts that healed it must not resurrect it
        router.absorb(prov, _confident(True))
        refreshed = router.cache.get(prov.micro_key())
        assert refreshed is rule and refreshed.invalidated
        assert router.route(prov) is None

    def test_serving_rule_audited_every_interval(self, engine):
        router = CascadeRouter(engine, audit_interval=4)
        prov = _prov()
        router.absorb(prov, _confident(False))
        outcomes = [router.route(prov) for _ in range(8)]
        audits = [o for o in outcomes if isinstance(o, CascadeAudit)]
        hits = [o for o in outcomes if isinstance(o, CascadeHit)]
        assert len(audits) == 2  # hits 4 and 8
        assert len(hits) == 6
        assert router.stats.audits == 2

    def test_agreements_never_erase_disagreements(self, router):
        prov = _prov(url=AD_URL)
        audit = router.route(prov)
        router.reconcile(audit, model_is_ad=False)  # one strike
        for _ in range(5):
            audit = router.route(prov)
            router.reconcile(audit, model_is_ad=True)
        rule = router.cache.get(audit.rule_key)
        assert rule.disagreements == 1
        assert not rule.serving  # promotion requires a clean record
        audit = router.route(prov)
        router.reconcile(audit, model_is_ad=False)  # second strike: out
        assert rule.invalidated


class TestAbsorb:
    def test_unconfident_verdicts_do_not_compile(self, router):
        prov = _prov()
        router.absorb(prov, _confident(True, probability=0.6))
        assert router.stats.unconfident == 1
        assert router.cache.size == 0
        assert router.route(prov) is None

    def test_confidence_is_symmetric_around_half(self, router):
        router.absorb(_prov(), _confident(False, probability=0.05))
        assert router.stats.compiled == 1

    def test_absorb_without_decision_is_a_no_op(self, router):
        router.absorb(_prov(), None)
        router.absorb(None, _confident(True))
        assert router.cache.size == 0

    def test_confidence_threshold_validated(self, engine):
        with pytest.raises(ValueError):
            CascadeRouter(engine, confidence=0.5)
        with pytest.raises(ValueError):
            CascadeRouter(engine, confidence=1.5)

    def test_sourceless_provenance_never_reaches_micro_key(self, router):
        """A provenance without a derivable source (no URL host) must
        be rejected before key derivation — not compiled under the
        degenerate ``page|?|shape`` key, not shadow-compared."""
        for url in ("", "not a url", "/relative/path.png"):
            router.absorb(_prov(url=url), _confident(True))
        assert router.cache.size == 0
        assert router.stats.compiled == 0
        # rejected before the confidence check, too
        assert router.stats.unconfident == 0


class TestInvalidationStats:
    def test_audit_invalidations_counted_separately(self):
        router = CascadeRouter(None, audit_interval=1, invalidate_after=2)
        prov = _prov()
        router.absorb(prov, _confident(False))
        for _ in range(2):
            audit = router.route(prov)
            assert isinstance(audit, CascadeAudit)
            router.reconcile(audit, model_is_ad=True)  # drift
        assert router.stats.audit_invalidations == 1
        assert router.stats.shadow_invalidations == 0
        assert router.stats.invalidations == 1

    def test_shadow_invalidations_counted_separately(self, router):
        prov = _prov()
        router.absorb(prov, _confident(False))
        router.absorb(prov, _confident(True))
        router.absorb(prov, _confident(True))
        assert router.stats.shadow_invalidations == 1
        assert router.stats.audit_invalidations == 0
        assert router.stats.invalidations == 1


class TestResolveCascade:
    def test_false_pins_off_even_when_env_says_on(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_CASCADE", "on")
        assert resolve_cascade(False, PercivalConfig()) is None

    def test_router_instance_used_as_is(self, router):
        assert resolve_cascade(router, PercivalConfig()) is router

    def test_none_defers_to_env_off(self, monkeypatch):
        monkeypatch.delenv("PERCIVAL_CASCADE", raising=False)
        assert resolve_cascade(None, PercivalConfig()) is None
        monkeypatch.setenv("PERCIVAL_CASCADE", "off")
        assert resolve_cascade(None, PercivalConfig()) is None

    def test_none_defers_to_env_on(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_CASCADE", "1")
        resolved = resolve_cascade(None, PercivalConfig())
        assert isinstance(resolved, CascadeRouter)
        assert resolved.filter_engine is not None

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_CASCADE", "off")
        config = PercivalConfig(cascade_enabled=True, cascade_confidence=0.8)
        resolved = resolve_cascade(None, config)
        assert isinstance(resolved, CascadeRouter)
        assert resolved.confidence == 0.8

    def test_garbage_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("PERCIVAL_CASCADE", "maybe")
        with pytest.raises(ValueError):
            resolve_cascade(None, PercivalConfig())

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            resolve_cascade(True, PercivalConfig())
        with pytest.raises(TypeError):
            resolve_cascade("on", PercivalConfig())
