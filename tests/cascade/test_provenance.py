"""FrameProvenance feature extraction: source, size class, micro key."""

import pytest

from repro.cascade import FrameProvenance


def _prov(**kwargs):
    defaults = dict(
        url="https://static.adnet.example/serve/banner01.png",
        page_domain="news.example",
    )
    defaults.update(kwargs)
    return FrameProvenance(**defaults)


def test_source_is_host_plus_first_path_segment():
    prov = _prov(url="https://static.adnet.example/serve/banner01.png")
    assert prov.source == "static.adnet.example/serve"


def test_source_without_path_is_just_host():
    assert _prov(url="https://cdn.example").source == "cdn.example"
    assert _prov(url="https://cdn.example/").source == "cdn.example"


def test_source_ignores_deeper_path_and_query():
    first = _prov(url="https://ads.example/slot/a/b/c.png?cb=1")
    second = _prov(url="https://ads.example/slot/zzz.png")
    assert first.source == second.source == "ads.example/slot"


@pytest.mark.parametrize(
    "width,height,expected",
    [
        (0, 0, "unsized"),
        (0, 250, "unsized"),
        (728, 90, "banner"),       # w >= 3h
        (90, 600, "skyscraper"),   # h >= 3w
        (100, 100, "tile"),        # both <= 120
        (120, 120, "tile"),
        (300, 250, "rectangle"),
    ],
)
def test_size_class_buckets(width, height, expected):
    assert _prov(width=width, height=height).size_class == expected


def test_micro_key_composes_page_source_size():
    prov = _prov(
        url="https://ads.example/slot/x.png",
        page_domain="blog.example",
        width=728,
        height=90,
    )
    assert prov.micro_key() == "blog.example|ads.example/slot|banner"


def test_same_creative_on_two_pages_gets_distinct_keys():
    one = _prov(page_domain="a.example")
    two = _prov(page_domain="b.example")
    assert one.micro_key() != two.micro_key()
    assert one.source == two.source


def test_provenance_is_frozen_and_hashable():
    prov = _prov()
    with pytest.raises(AttributeError):
        prov.url = "https://other.example/x.png"
    assert hash(prov) == hash(_prov())
