"""im2col/col2im and the convolution/pooling kernels vs naive loops."""

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, w, b, stride, pad):
    """Reference convolution: direct loops."""
    n, c, h, width = x.shape
    oc, _, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (width + 2 * pad - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow), dtype=x.dtype)
    for i in range(n):
        for o in range(oc):
            for y in range(oh):
                for z in range(ow):
                    patch = x[i, :, y * stride:y * stride + kh,
                              z * stride:z * stride + kw]
                    out[i, o, y, z] = (patch * w[o]).sum() + b[o]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(224, 3, 2, 1) == 112

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float64).reshape(2, 3, 5, 5)
        cols = F.im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 5 * 5, 3 * 3 * 3)

    def test_roundtrip_sums_overlaps(self):
        x = np.ones((1, 1, 4, 4))
        cols = F.im2col(x, 2, 2, 1, 0)
        back = F.col2im(cols, (1, 1, 4, 4), 2, 2, 1, 0)
        # interior pixels belong to 4 windows, corners to 1
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 1, 1] == 4

    def test_stride_skips_positions(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, 2, 0)
        assert cols.shape == (4, 4)
        assert cols[0].tolist() == [0, 1, 4, 5]


class TestConv2dForward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        ours, _ = F.conv2d_forward(x, w, b, stride, pad)
        ref = naive_conv2d(x, w, b, stride, pad)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_1x1_conv(self, rng):
        x = rng.standard_normal((1, 8, 5, 5))
        w = rng.standard_normal((2, 8, 1, 1))
        b = np.zeros(2)
        ours, _ = F.conv2d_forward(x, w, b, 1, 0)
        ref = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        assert np.allclose(ours, ref, atol=1e-10)


class TestMaxPool:
    def test_matches_naive(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        out, _ = F.maxpool2d_forward(x, 2, 2)
        ref = x.reshape(2, 3, 3, 2, 3, 2).max(axis=(3, 5))
        assert np.allclose(out, ref)

    def test_overlapping_windows(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        out, _ = F.maxpool2d_forward(x, 3, 2)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_backward_routes_to_argmax(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out, argmax = F.maxpool2d_forward(x, 2, 2)
        grad = F.maxpool2d_backward(
            np.ones_like(out), argmax, x.shape, 2, 2
        )
        assert grad[0, 0, 1, 1] == 1.0
        assert grad.sum() == 1.0


class TestAvgPool:
    def test_forward_mean(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        out = F.avgpool2d_forward(x, 2, 2)
        ref = x.reshape(2, 2, 2, 2, 2, 2).mean(axis=(3, 5))
        assert np.allclose(out, ref)

    def test_backward_spreads_uniformly(self):
        x = np.zeros((1, 1, 2, 2))
        out = F.avgpool2d_forward(x, 2, 2)
        grad = F.avgpool2d_backward(np.ones_like(out), x.shape, 2, 2)
        assert np.allclose(grad, 0.25)
