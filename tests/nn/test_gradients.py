"""Numerical gradient checks for every layer's backward pass.

These are the framework's deepest correctness tests: each hand-written
backward pass is verified against central finite differences in
float64, where agreement to ~1e-6 relative error is expected.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    FireModule,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
)
from repro.nn.gradcheck import check_layer_gradients, numerical_gradient

TOLERANCE = 1e-5


@pytest.fixture()
def rng64():
    return np.random.default_rng(42)


class TestLayerGradients:
    def test_conv2d(self, rng64):
        layer = Conv2d(3, 4, kernel_size=3, stride=1, padding=1,
                       rng=rng64, dtype=np.float64)
        input_err, param_err = check_layer_gradients(
            layer, (2, 3, 5, 5), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE

    def test_conv2d_strided(self, rng64):
        layer = Conv2d(2, 3, kernel_size=3, stride=2, padding=1,
                       rng=rng64, dtype=np.float64)
        input_err, param_err = check_layer_gradients(
            layer, (1, 2, 7, 7), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE

    def test_conv2d_1x1(self, rng64):
        layer = Conv2d(4, 2, kernel_size=1, rng=rng64, dtype=np.float64)
        input_err, param_err = check_layer_gradients(
            layer, (2, 4, 3, 3), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE

    def test_relu(self, rng64):
        input_err, _ = check_layer_gradients(ReLU(), (2, 3, 4, 4), rng64)
        assert input_err < TOLERANCE

    def test_maxpool(self, rng64):
        input_err, _ = check_layer_gradients(
            MaxPool2d(2, 2), (1, 2, 6, 6), rng64
        )
        assert input_err < TOLERANCE

    def test_maxpool_overlapping(self, rng64):
        input_err, _ = check_layer_gradients(
            MaxPool2d(3, 2), (1, 2, 7, 7), rng64
        )
        assert input_err < TOLERANCE

    def test_avgpool(self, rng64):
        input_err, _ = check_layer_gradients(
            AvgPool2d(2, 2), (1, 2, 4, 4), rng64
        )
        assert input_err < TOLERANCE

    def test_global_avgpool(self, rng64):
        input_err, _ = check_layer_gradients(
            GlobalAvgPool2d(), (2, 3, 4, 4), rng64
        )
        assert input_err < TOLERANCE

    def test_flatten(self, rng64):
        input_err, _ = check_layer_gradients(
            Flatten(), (2, 3, 2, 2), rng64
        )
        assert input_err < TOLERANCE

    def test_linear(self, rng64):
        layer = Linear(6, 3, rng=rng64, dtype=np.float64)
        input_err, param_err = check_layer_gradients(
            layer, (4, 6), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE

    def test_fire_module(self, rng64):
        layer = FireModule(4, 2, 8, rng=rng64)
        for param in layer.parameters():
            param.data = param.data.astype(np.float64)
            param.grad = np.zeros_like(param.data)
        input_err, param_err = check_layer_gradients(
            layer, (1, 4, 5, 5), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE

    def test_small_sequential_stack(self, rng64):
        net = Sequential([
            Conv2d(2, 3, 3, padding=1, rng=rng64, dtype=np.float64),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(3, 2, 1, rng=rng64, dtype=np.float64),
            GlobalAvgPool2d(),
        ])
        for param in net.parameters():
            param.data = param.data.astype(np.float64)
            param.grad = np.zeros_like(param.data)
        input_err, param_err = check_layer_gradients(
            net, (1, 2, 4, 4), rng64
        )
        assert input_err < TOLERANCE
        assert param_err < TOLERANCE


class TestLossGradient:
    def test_softmax_cross_entropy_gradient(self, rng64):
        loss_fn = SoftmaxCrossEntropy()
        logits = rng64.standard_normal((4, 3))
        labels = np.array([0, 2, 1, 2])

        def objective(arr):
            value, _ = loss_fn.forward(arr, labels)
            return value

        numeric = numerical_gradient(objective, logits.copy())
        loss_fn.forward(logits, labels)
        analytic = loss_fn.backward()
        assert np.abs(analytic - numeric).max() < TOLERANCE

    def test_loss_positive_and_decreasing_with_confidence(self):
        loss_fn = SoftmaxCrossEntropy()
        labels = np.array([1])
        weak, _ = loss_fn.forward(np.array([[0.0, 0.1]]), labels)
        strong, _ = loss_fn.forward(np.array([[0.0, 5.0]]), labels)
        assert weak > strong > 0
