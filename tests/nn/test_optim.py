"""SGD with momentum and step learning-rate decay (the §4.3 recipe)."""

import numpy as np
import pytest

from repro.nn import SGD, StepLR
from repro.nn.tensor import Parameter


def _param(value):
    return Parameter(np.array(value, dtype=np.float64), name="p")


class TestSGD:
    def test_plain_gradient_step(self):
        p = _param([1.0])
        optimizer = SGD([p], lr=0.1, momentum=0.0)
        p.grad[...] = 2.0
        optimizer.step()
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = _param([0.0])
        optimizer = SGD([p], lr=0.1, momentum=0.9)
        p.grad[...] = 1.0
        optimizer.step()   # v = -0.1
        first = p.data.copy()
        p.grad[...] = 1.0
        optimizer.step()   # v = -0.9*0.1 - 0.1 = -0.19
        second_step = p.data - first
        assert second_step < -0.1  # bigger than the plain step

    def test_zero_grad_clears(self):
        p = _param([1.0])
        optimizer = SGD([p], lr=0.1)
        p.grad[...] = 5.0
        optimizer.zero_grad()
        assert np.all(p.grad == 0)

    def test_weight_decay_pulls_to_zero(self):
        p = _param([1.0])
        optimizer = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.grad[...] = 0.0
        optimizer.step()
        assert p.data[0] < 1.0

    def test_validation(self):
        p = _param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        # minimize (x - 3)^2 — a sanity check of the whole update rule
        # (momentum rings around the optimum, so allow a loose landing)
        p = _param([0.0])
        optimizer = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            optimizer.zero_grad()
            p.grad[...] = 2 * (p.data - 3.0)
            optimizer.step()
        assert abs(p.data[0] - 3.0) < 0.01


class TestStepLR:
    def test_paper_schedule(self):
        # lr 0.001, x0.1 every 30 epochs (§4.3)
        p = _param([0.0])
        optimizer = SGD([p], lr=0.001)
        scheduler = StepLR(optimizer, step_epochs=30, gamma=0.1)
        for _ in range(29):
            scheduler.epoch_end()
        assert optimizer.lr == pytest.approx(0.001)
        scheduler.epoch_end()  # epoch 30
        assert optimizer.lr == pytest.approx(0.0001)
        for _ in range(30):
            scheduler.epoch_end()
        assert optimizer.lr == pytest.approx(0.00001)

    def test_gamma_one_never_decays(self):
        p = _param([0.0])
        optimizer = SGD([p], lr=0.01)
        scheduler = StepLR(optimizer, step_epochs=1, gamma=1.0)
        for _ in range(10):
            scheduler.epoch_end()
        assert optimizer.lr == pytest.approx(0.01)

    def test_validation(self):
        p = _param([0.0])
        optimizer = SGD([p], lr=0.01)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_epochs=0)
        with pytest.raises(ValueError):
            StepLR(optimizer, gamma=0.0)
