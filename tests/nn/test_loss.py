"""Softmax and cross-entropy behaviour."""

import numpy as np
import pytest

from repro.nn import SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_sums_to_one(self, rng):
        logits = rng.standard_normal((5, 3))
        probs = softmax(logits, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_numerically_stable_at_large_logits(self):
        logits = np.array([[1000.0, 1000.0]])
        probs = softmax(logits)
        assert np.allclose(probs, [[0.5, 0.5]])
        assert np.isfinite(probs).all()

    def test_invariant_to_shift(self, rng):
        logits = rng.standard_normal((2, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_ordering_preserved(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs[0, 0] < probs[0, 1] < probs[0, 2]


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        loss, _ = loss_fn.forward(
            np.array([[10.0, -10.0]]), np.array([0])
        )
        assert loss < 1e-4

    def test_uniform_prediction_log_n(self):
        loss_fn = SoftmaxCrossEntropy()
        loss, _ = loss_fn.forward(
            np.zeros((3, 4)), np.array([0, 1, 2])
        )
        assert loss == pytest.approx(np.log(4), rel=1e-6)

    def test_batch_size_mismatch_raises(self):
        loss_fn = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss_fn.forward(np.zeros((2, 3)), np.array([0]))

    def test_bad_logit_rank_raises(self):
        loss_fn = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss_fn.forward(np.zeros(3), np.array([0]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_backward_mean_scaled(self):
        loss_fn = SoftmaxCrossEntropy()
        loss_fn.forward(np.zeros((4, 2)), np.array([0, 0, 1, 1]))
        grad = loss_fn.backward()
        # grad rows sum to zero; magnitude scaled by 1/batch
        assert np.allclose(grad.sum(axis=1), 0.0)
        assert np.abs(grad).max() <= 0.5 / 4 + 1e-9
