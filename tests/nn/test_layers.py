"""Layer semantics beyond gradients: shapes, modes, validation."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Dropout,
    FireModule,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
    Sequential,
)


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_channel_mismatch_raises(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4, 8, 8), dtype=np.float32))

    def test_non_nchw_raises(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 8, 8), dtype=np.float32))

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 8, 6, 6)))

    def test_invalid_geometry_rejected(self, rng):
        with pytest.raises(ValueError):
            Conv2d(0, 8, 3, rng=rng)
        with pytest.raises(ValueError):
            Conv2d(3, 8, 0, rng=rng)
        with pytest.raises(ValueError):
            Conv2d(3, 8, 3, stride=0, rng=rng)

    def test_parameter_accounting(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, rng=rng)
        assert layer.num_parameters() == 3 * 8 * 9 + 8
        assert layer.parameter_bytes() == layer.num_parameters() * 4


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.training = False
        x = np.ones((4, 4), dtype=np.float32)
        assert np.array_equal(layer.forward(x), x)

    def test_train_mode_zeroes_some(self):
        layer = Dropout(0.5, seed=0)
        layer.training = True
        x = np.ones((100, 100), dtype=np.float32)
        out = layer.forward(x)
        zero_fraction = (out == 0).mean()
        assert 0.3 < zero_fraction < 0.7

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.5, seed=1)
        layer.training = True
        x = np.ones((200, 200), dtype=np.float32)
        out = layer.forward(x)
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestGlobalAvgPool:
    def test_reduces_spatial(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        out = GlobalAvgPool2d().forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out[0, 0], x[0, 0].mean())

    def test_input_size_agnostic(self):
        layer = GlobalAvgPool2d()
        for size in (2, 4, 7):
            out = layer.forward(np.ones((1, 2, size, size),
                                        dtype=np.float32))
            assert out.shape == (1, 2)


class TestFireModule:
    def test_output_channels(self, rng):
        fire = FireModule(16, 4, 32, rng=rng)
        out = fire.forward(np.zeros((1, 16, 8, 8), dtype=np.float32))
        assert out.shape == (1, 32, 8, 8)

    def test_odd_expand_rejected(self, rng):
        with pytest.raises(ValueError):
            FireModule(16, 4, 33, rng=rng)

    def test_squeeze_reduces_channels(self, rng):
        fire = FireModule(64, 8, 64, rng=rng)
        assert fire.squeeze.out_channels == 8
        assert fire.expand1x1.in_channels == 8
        assert fire.expand3x3.in_channels == 8

    def test_parameters_cover_all_convs(self, rng):
        fire = FireModule(16, 4, 32, rng=rng)
        assert len(fire.parameters()) == 6  # 3 convs x (weight, bias)

    def test_output_nonnegative_after_relu(self, rng):
        fire = FireModule(4, 2, 8, rng=rng)
        out = fire.forward(
            rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        )
        assert (out >= 0).all()


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_train_eval_propagates(self, rng):
        net = Sequential([Dropout(0.5), Identity()])
        net.eval()
        assert not net.layers[0].training
        net.train()
        assert net.layers[0].training

    def test_capture_records_activation(self, rng):
        net = Sequential([
            Conv2d(1, 2, 1, rng=rng),
            ReLU(),
            GlobalAvgPool2d(),
        ])
        net.capture([1])
        out = net.forward(np.ones((1, 1, 3, 3), dtype=np.float32))
        captured = net.captured(1)
        assert captured is not None
        assert captured.shape == (1, 2, 3, 3)
        assert net.captured(0) is None
        assert out.shape == (1, 2)

    def test_backward_from_layer(self, rng):
        net = Sequential([
            Conv2d(1, 2, 1, rng=rng),
            ReLU(),
            GlobalAvgPool2d(),
        ])
        out = net.forward(np.ones((1, 1, 3, 3), dtype=np.float32))
        grad = net.backward_from(np.ones_like(out), 1)
        assert grad.shape == (1, 2, 3, 3)

    def test_backward_from_out_of_range(self, rng):
        net = Sequential([Identity()])
        with pytest.raises(IndexError):
            net.backward_from(np.zeros(1), 5)

    def test_summary_lists_layers(self, rng):
        net = Sequential([Conv2d(1, 1, 1, rng=rng), ReLU()], name="t")
        text = net.summary()
        assert "Conv2d" in text
        assert "total params" in text

    def test_getitem_and_len(self, rng):
        net = Sequential([Identity(), ReLU()])
        assert len(net) == 2
        assert isinstance(net[1], ReLU)


class TestLinear:
    def test_shape_validation(self, rng):
        layer = Linear(4, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4, 1), dtype=np.float32))

    def test_affine_correctness(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        out = layer.forward(x)
        ref = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out, ref)
