"""Training-loop behaviour on small learnable problems."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    ReLU,
    Sequential,
    TrainConfig,
    Trainer,
)


def _toy_problem(rng, n=64, size=8):
    """Bright-vs-dark images: learnable by any conv net in a few epochs."""
    images = np.empty((n, 1, size, size), dtype=np.float32)
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        if i % 2 == 0:
            images[i] = rng.uniform(0.6, 1.0, (1, size, size))
            labels[i] = 1
        else:
            images[i] = rng.uniform(0.0, 0.4, (1, size, size))
            labels[i] = 0
    return images, labels


def _small_net(rng):
    return Sequential([
        Conv2d(1, 4, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(4, 2, 1, rng=rng),
        GlobalAvgPool2d(),
    ])


class TestTrainer:
    def test_learns_toy_problem(self, rng):
        images, labels = _toy_problem(rng)
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=12, lr=0.05, seed=0))
        report = trainer.fit(images, labels)
        assert report.final_train_accuracy > 0.85

    def test_loss_decreases(self, rng):
        images, labels = _toy_problem(rng)
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=6, lr=0.05, seed=0))
        report = trainer.fit(images, labels)
        assert report.epochs[-1].loss < report.epochs[0].loss

    def test_validation_tracked(self, rng):
        images, labels = _toy_problem(rng)
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=2, lr=0.05, seed=0))
        report = trainer.fit(images, labels, images[:16], labels[:16])
        assert report.final_val_accuracy is not None
        assert 0.0 <= report.final_val_accuracy <= 1.0

    def test_deterministic_given_seed(self, rng):
        images, labels = _toy_problem(rng)
        results = []
        for _ in range(2):
            net = _small_net(np.random.default_rng(3))
            trainer = Trainer(net, TrainConfig(epochs=2, lr=0.05, seed=9))
            report = trainer.fit(images, labels)
            results.append(report.final_loss)
        assert results[0] == pytest.approx(results[1])

    def test_shape_validation(self, rng):
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 1, 8, 8), dtype=np.float32),
                        np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 8, 8), dtype=np.float32),
                        np.zeros(4, dtype=np.int64))

    def test_predict_batched(self, rng):
        images, labels = _toy_problem(rng, n=32)
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=1, lr=0.05))
        trainer.fit(images, labels)
        predictions = trainer.predict(images, batch_size=7)
        assert predictions.shape == (32,)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_network_left_in_eval_mode(self, rng):
        images, labels = _toy_problem(rng, n=16)
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=1))
        trainer.fit(images, labels)
        assert all(not layer.training for layer in net.layers)

    def test_empty_predict(self, rng):
        net = _small_net(rng)
        trainer = Trainer(net, TrainConfig(epochs=1))
        out = trainer.predict(np.zeros((0, 1, 8, 8), dtype=np.float32))
        assert out.shape == (0,)

    def test_report_nan_when_untrained(self):
        from repro.nn.trainer import TrainReport
        report = TrainReport()
        assert np.isnan(report.final_loss)
        assert report.final_val_accuracy is None
