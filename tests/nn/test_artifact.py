"""Weight artifacts: quantization math, packing, and persistence."""

import numpy as np
import pytest

from repro.models.percivalnet import PercivalNet
from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    Sequential,
    WeightArtifact,
    load_weights,
    save_weights,
)
from repro.nn.quantize import (
    dequantize_array,
    dequantize_int8,
    int8_scales,
    quantize_array,
    quantize_int8,
    validate_precision,
)


class TestQuantizeKernels:
    def test_validate_precision(self):
        assert validate_precision(" INT8 ") == "int8"
        with pytest.raises(ValueError):
            validate_precision("bf16")

    def test_int8_roundtrip_error_within_half_scale(self, rng):
        weights = rng.standard_normal((8, 5, 3, 3)).astype(np.float32)
        quantized, scales = quantize_int8(weights)
        assert quantized.dtype == np.int8
        restored = dequantize_int8(quantized, scales)
        per_channel_error = np.abs(restored - weights).reshape(8, -1).max(axis=1)
        assert np.all(per_channel_error <= scales / 2 + 1e-7)

    def test_int8_zero_channel_is_exact(self):
        weights = np.zeros((2, 4), dtype=np.float32)
        weights[1] = np.linspace(-1, 1, 4)
        quantized, scales = quantize_int8(weights)
        assert scales[0] == 1.0  # all-zero channel: neutral scale
        assert np.array_equal(
            dequantize_int8(quantized, scales)[0], np.zeros(4)
        )

    def test_int8_hits_full_range(self, rng):
        weights = rng.standard_normal((3, 64)).astype(np.float32)
        quantized, _ = quantize_int8(weights)
        assert quantized.max() == 127 or quantized.min() == -127

    def test_fp16_is_a_cast(self, rng):
        weights = rng.standard_normal((4, 4)).astype(np.float32)
        stored, scales = quantize_array(weights, "fp16")
        assert stored.dtype == np.float16
        assert scales is None
        assert np.array_equal(
            dequantize_array(stored), stored.astype(np.float32)
        )

    def test_int8_biases_stay_fp32(self, rng):
        bias = rng.standard_normal(7).astype(np.float32)
        stored, scales = quantize_array(bias, "int8")
        assert stored.dtype == np.float32
        assert scales is None

    def test_scales_require_channel_axis(self):
        with pytest.raises(ValueError):
            int8_scales(np.ones(3, dtype=np.float32))


class TestWeightArtifact:
    @pytest.fixture()
    def network(self):
        network = PercivalNet.small()
        network.eval()
        return network

    def test_fp32_passthrough_is_exact(self, network):
        artifact = WeightArtifact.from_network(network, "fp32")
        for index, param in enumerate(network.parameters()):
            assert np.array_equal(artifact.dequantized(index), param.data)

    @pytest.mark.parametrize("precision,ratio", [("fp16", 2.0), ("int8", 3.0)])
    def test_packed_buffer_shrinks(self, network, precision, ratio):
        fp32 = WeightArtifact.from_network(network, "fp32")
        small = WeightArtifact.from_network(network, precision)
        assert fp32.nbytes >= ratio * small.nbytes

    def test_manifest_rows_carry_storage_dtypes(self, network):
        artifact = WeightArtifact.from_network(network, "int8")
        rows = artifact.manifest_rows()
        weight_rows = [r for r in rows if r[0].endswith(".weight")]
        bias_rows = [r for r in rows if r[0].endswith(".bias")]
        assert weight_rows and bias_rows
        for name, shape, dtype, offset, scales in weight_rows:
            assert np.dtype(dtype) == np.int8
            assert scales is not None and len(scales) == shape[0]
        for name, shape, dtype, offset, scales in bias_rows:
            assert np.dtype(dtype) == np.float32
            assert scales is None

    @pytest.mark.parametrize("precision", ["fp32", "fp16", "int8"])
    def test_manifest_roundtrip_is_bit_exact(self, network, precision):
        artifact = WeightArtifact.from_network(network, precision)
        rebuilt = WeightArtifact.from_manifest(
            artifact.manifest_rows(), artifact.buffer.tobytes(),
            precision=precision, total_bytes=artifact.nbytes,
        )
        assert rebuilt.precision == precision
        for index in range(len(artifact.entries)):
            assert np.array_equal(
                artifact.dequantized(index), rebuilt.dequantized(index)
            )

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_load_into_dequantizes_to_fp32(self, network, precision):
        artifact = WeightArtifact.from_network(network, precision)
        target = PercivalNet.small(seed=3)
        artifact.load_into(target)
        for index, param in enumerate(target.parameters()):
            assert param.data.dtype == np.float32
            assert np.array_equal(param.data, artifact.dequantized(index))

    def test_load_into_rejects_wrong_architecture(self, network):
        artifact = WeightArtifact.from_network(network, "fp32")
        other = Sequential([Conv2d(2, 3, kernel_size=1, name="c"),
                            GlobalAvgPool2d()])
        with pytest.raises(ValueError):
            artifact.load_into(other)

    def test_overrunning_manifest_rejected(self, network):
        artifact = WeightArtifact.from_network(network, "fp32")
        rows = list(artifact.manifest_rows())
        name, shape, dtype, offset, scales = rows[-1]
        rows[-1] = (name, shape, dtype, artifact.nbytes, scales)
        with pytest.raises(ValueError):
            WeightArtifact.from_manifest(
                rows, artifact.buffer.tobytes(),
                precision="fp32", total_bytes=artifact.nbytes,
            )


class TestPrecisionSerialization:
    @pytest.fixture()
    def network(self):
        return PercivalNet.small(seed=11)

    def test_fp32_archive_format_unchanged(self, network, tmp_path):
        # fp32 archives keep the pre-precision layout: p#### arrays
        # only, fp32 payloads, no scale siblings
        path = str(tmp_path / "w.npz")
        save_weights(network, path)
        with np.load(path, allow_pickle=False) as archive:
            payload_keys = [k for k in archive.files if k.startswith("p")]
            assert not any(k.startswith("s") for k in archive.files)
            for key in payload_keys:
                assert archive[key].dtype == np.float32

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_quantized_roundtrip(self, network, precision, tmp_path):
        path = str(tmp_path / "w.npz")
        save_weights(network, path, precision=precision)
        target = PercivalNet.small(seed=99)
        loaded = load_weights(target, path)
        assert loaded == len(network.parameters())
        artifact = WeightArtifact.from_network(network, precision)
        for index, param in enumerate(target.parameters()):
            assert param.data.dtype == np.float32
            assert np.array_equal(param.data, artifact.dequantized(index))

    def test_quantized_archive_is_smaller(self, network, tmp_path):
        fp32_path = str(tmp_path / "fp32.npz")
        int8_path = str(tmp_path / "int8.npz")
        save_weights(network, fp32_path)
        save_weights(network, int8_path, precision="int8")
        import os

        assert os.path.getsize(int8_path) < os.path.getsize(fp32_path)

    def test_int8_roundtrip_close_to_original(self, tmp_path):
        network = PercivalNet.small(seed=5)
        path = str(tmp_path / "w.npz")
        save_weights(network, path, precision="int8")
        target = PercivalNet.small(seed=77)
        load_weights(target, path)
        for original, restored in zip(
            network.parameters(), target.parameters()
        ):
            scale = max(float(np.abs(original.data).max()), 1e-6)
            error = float(np.abs(original.data - restored.data).max())
            assert error <= scale / 127.0 + 1e-7
