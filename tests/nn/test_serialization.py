"""Weight save/load round trips and transfer-learning partial loads."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, ReLU, Sequential
from repro.nn.serialization import load_weights, save_weights


def _net(rng, out_channels=2):
    return Sequential([
        Conv2d(1, 4, 3, padding=1, rng=rng, name="c1"),
        ReLU(),
        Conv2d(4, out_channels, 1, rng=rng, name="c2"),
        GlobalAvgPool2d(),
    ])


class TestRoundTrip:
    def test_save_load_identity(self, rng, tmp_path):
        net = _net(rng)
        path = str(tmp_path / "weights.npz")
        count = save_weights(net, path)
        assert count == 4  # 2 convs x (weight, bias)

        other = _net(np.random.default_rng(999))
        load_weights(other, path)
        for a, b in zip(net.parameters(), other.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_outputs_identical_after_load(self, rng, tmp_path):
        net = _net(rng)
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        other = _net(np.random.default_rng(1))
        load_weights(other, path)
        x = rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
        assert np.allclose(net.forward(x), other.forward(x))

    def test_creates_directories(self, rng, tmp_path):
        net = _net(rng)
        path = str(tmp_path / "deep" / "nested" / "w.npz")
        save_weights(net, path)
        load_weights(net, path)


class TestStrictness:
    def test_count_mismatch_strict_raises(self, rng, tmp_path):
        net = _net(rng)
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        small = Sequential([Conv2d(1, 4, 3, padding=1, rng=rng)])
        with pytest.raises(ValueError):
            load_weights(small, path)

    def test_shape_mismatch_strict_raises(self, rng, tmp_path):
        net = _net(rng, out_channels=2)
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        different = _net(rng, out_channels=3)
        with pytest.raises(ValueError):
            load_weights(different, path)

    def test_partial_load_non_strict(self, rng, tmp_path):
        net = _net(rng, out_channels=2)
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        target = _net(np.random.default_rng(5), out_channels=3)
        loaded = load_weights(target, path, strict=False)
        # first conv transfers, second conv (different shape) does not
        assert loaded == 2
        assert np.array_equal(
            target.parameters()[0].data, net.parameters()[0].data
        )
        assert not np.array_equal(
            target.parameters()[2].data, net.parameters()[2].data
        )
