"""The compiled inference fast path: kernels, plan compiler, dtypes.

Property-style equivalence: every fast-path kernel must match its
reference training-path kernel within 1e-5 across randomized geometries
(kernel in {1, 3}, stride in {1, 2}, pad in {0, 1}, odd spatial sizes).
"""

import itertools

import numpy as np
import pytest

from repro.models.percivalnet import PercivalNet
from repro.nn import (
    Conv2d,
    Dropout,
    FireModule,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Layer,
    Linear,
    ReLU,
    Sequential,
    UnsupportedLayerError,
    WeightArtifact,
    compile_inference,
)
from repro.nn import functional as F
from repro.nn.inference import ScratchCache
from repro.utils.rng import spawn_rng

#: kernel, stride, pad, (H, W) — odd sizes included on purpose.
CONV_GEOMETRIES = [
    (kernel, stride, pad, size)
    for kernel, stride, pad in itertools.product((1, 3), (1, 2), (0, 1))
    for size in ((7, 9), (8, 8), (11, 5))
    if size[0] + 2 * pad >= kernel and size[1] + 2 * pad >= kernel
]

POOL_GEOMETRIES = [
    (kernel, stride, size)
    for kernel, stride in ((2, 2), (3, 2), (2, 1), (3, 3))
    for size in ((7, 9), (8, 8), (9, 11))
]


class TestConvKernelEquivalence:
    @pytest.mark.parametrize("kernel,stride,pad,size", CONV_GEOMETRIES)
    def test_conv2d_infer_matches_reference(self, kernel, stride, pad,
                                            size, rng):
        x = rng.standard_normal((2, 3, *size)).astype(np.float32)
        weight = rng.standard_normal((5, 3, kernel, kernel)).astype(
            np.float32
        )
        bias = rng.standard_normal(5).astype(np.float32)
        reference, _ = F.conv2d_forward(x, weight, bias, stride, pad)
        fast = F.conv2d_infer(x, weight, bias, stride, pad)
        assert fast.shape == reference.shape
        assert np.abs(reference - fast).max() < 1e-5

    @pytest.mark.parametrize("kernel,stride,pad,size", CONV_GEOMETRIES)
    def test_fused_relu_matches_separate(self, kernel, stride, pad,
                                         size, rng):
        x = rng.standard_normal((2, 3, *size)).astype(np.float32)
        weight = rng.standard_normal((4, 3, kernel, kernel)).astype(
            np.float32
        )
        bias = rng.standard_normal(4).astype(np.float32)
        reference, _ = F.conv2d_forward(x, weight, bias, stride, pad)
        fused = F.conv2d_infer(x, weight, bias, stride, pad, relu=True)
        assert np.abs(np.maximum(reference, 0.0) - fused).max() < 1e-5

    @pytest.mark.parametrize("stride,pad", [(1, 0), (2, 0), (1, 1)])
    def test_conv1x1_shortcut_matches_reference(self, stride, pad, rng):
        x = rng.standard_normal((3, 6, 9, 7)).astype(np.float32)
        weight = rng.standard_normal((4, 6, 1, 1)).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        reference, _ = F.conv2d_forward(x, weight, bias, stride, pad)
        fast = F.conv1x1_infer(x, weight, bias, stride, pad)
        assert np.abs(reference - fast).max() < 1e-5

    def test_scratch_buffer_reused(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        weight = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        bias = np.zeros(5, dtype=np.float32)
        scratch = np.empty(
            F.conv2d_scratch_shape(x.shape, weight.shape, 1, 1),
            dtype=np.float32,
        )
        out = F.conv2d_infer(x, weight, bias, 1, 1, out=scratch)
        assert np.shares_memory(out, scratch)
        reference, _ = F.conv2d_forward(x, weight, bias, 1, 1)
        assert np.abs(reference - out).max() < 1e-5


class TestIm2ColStrided:
    @pytest.mark.parametrize("kernel,stride,pad,size", CONV_GEOMETRIES)
    def test_matches_loop_im2col(self, kernel, stride, pad, size, rng):
        x = rng.standard_normal((2, 3, *size)).astype(np.float32)
        assert np.array_equal(
            F.im2col(x, kernel, kernel, stride, pad),
            F.im2col_strided(x, kernel, kernel, stride, pad),
        )

    def test_sliding_windows_is_zero_copy(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        windows = F.sliding_windows(x, 3, 3, 1, 0)
        assert np.shares_memory(windows, x)
        assert not windows.flags.writeable


class TestPoolKernelEquivalence:
    @pytest.mark.parametrize("kernel,stride,size", POOL_GEOMETRIES)
    def test_maxpool_matches_reference(self, kernel, stride, size, rng):
        x = rng.standard_normal((2, 4, *size)).astype(np.float32)
        reference, _ = F.maxpool2d_forward(x, kernel, stride)
        assert np.array_equal(
            reference, F.maxpool2d_infer(x, kernel, stride)
        )

    @pytest.mark.parametrize("kernel,stride,size", POOL_GEOMETRIES)
    def test_avgpool_matches_reference(self, kernel, stride, size, rng):
        x = rng.standard_normal((2, 4, *size)).astype(np.float32)
        reference = F.avgpool2d_forward(x, kernel, stride)
        fast = F.avgpool2d_infer(x, kernel, stride)
        assert np.abs(reference - fast).max() < 1e-5


class TestPlanCompiler:
    def test_percivalnet_compiles_and_matches(self, rng):
        network = PercivalNet.small()
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((3, 4, 32, 32)).astype(np.float32)
        assert np.abs(network.forward(x) - plan.run(x)).max() < 1e-5

    def test_dropout_and_identity_elided(self):
        network = Sequential([
            Conv2d(2, 3, kernel_size=1, name="c"),
            Identity(),
            Dropout(0.5),
            ReLU(),
            GlobalAvgPool2d(),
        ])
        plan = compile_inference(network)
        # conv+relu fuse across the elided layers is not attempted —
        # but dropout/identity must not appear as ops
        description = plan.describe()
        assert "Dropout" not in description
        assert "Identity" not in description

    def test_conv_relu_fusion(self):
        network = Sequential([
            Conv2d(2, 3, kernel_size=3, padding=1, name="c"),
            ReLU(),
            GlobalAvgPool2d(),
        ])
        plan = compile_inference(network)
        assert len(plan) == 2
        assert "+relu" in plan.ops[0].describe()

    def test_linear_network_compiles(self, rng):
        network = Sequential([
            Flatten(),
            Linear(12, 8, name="l1"),
            ReLU(),
            Linear(8, 2, name="l2"),
        ])
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((4, 3, 2, 2)).astype(np.float32)
        assert np.abs(network.forward(x) - plan.run(x)).max() < 1e-5

    def test_unsupported_layer_raises(self):
        class Exotic(Layer):
            def forward(self, x):
                return x

        with pytest.raises(UnsupportedLayerError):
            compile_inference(Sequential([Exotic()]))

    def test_repeated_runs_are_deterministic(self, rng):
        network = PercivalNet.small()
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((2, 4, 32, 32)).astype(np.float32)
        first = plan.run(x).copy()
        plan.run(rng.standard_normal((5, 4, 32, 32)).astype(np.float32))
        assert np.array_equal(first, plan.run(x))

    def test_run_does_not_mutate_input(self, rng):
        network = Sequential([ReLU(), GlobalAvgPool2d()])
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        snapshot = x.copy()
        plan.run(x)
        assert np.array_equal(x, snapshot)

    def test_output_does_not_alias_scratch(self, rng):
        # a plan ending in a conv must copy its result out of scratch
        network = Sequential([Conv2d(2, 3, kernel_size=1, name="c")])
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        first = plan.run(x)
        snapshot = first.copy()
        plan.run(rng.standard_normal((1, 2, 4, 4)).astype(np.float32))
        assert np.array_equal(first, snapshot)

    def test_weight_updates_flow_through_views(self, rng):
        network = Sequential([Conv2d(2, 3, kernel_size=1, name="c"),
                              GlobalAvgPool2d()])
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        before = plan.run(x).copy()
        network.layers[0].weight.data += 1.0  # in-place, like SGD
        after = plan.run(x)
        assert not np.array_equal(before, after)
        assert np.abs(network.forward(x) - after).max() < 1e-5


class TestScratchCache:
    """Regression: buffers must be keyed on dtype as well as shape —
    a plan recompiled at another precision must never be handed a
    stale-dtype scratch buffer."""

    def test_dtype_is_part_of_the_key(self):
        cache = ScratchCache()
        shape_fn = lambda key: key  # noqa: E731
        f32 = cache.take((2, 3), shape_fn, np.float32)
        f64 = cache.take((2, 3), shape_fn, np.float64)
        assert f32.dtype == np.float32
        assert f64.dtype == np.float64
        assert f32 is not f64
        # same shape+dtype still reuses the buffer
        assert cache.take((2, 3), shape_fn, np.float32) is f32

    def test_lru_capacity_counts_dtype_variants(self):
        cache = ScratchCache(capacity=2)
        shape_fn = lambda key: key  # noqa: E731
        first = cache.take((4,), shape_fn, np.float32)
        cache.take((4,), shape_fn, np.float64)
        cache.take((5,), shape_fn, np.float32)  # evicts the oldest
        assert cache.take((4,), shape_fn, np.float32) is not first


class TestArtifactCompilation:
    """compile_inference(network, artifact=...) computes over the
    artifact's dequantized weights instead of the live parameters."""

    def test_fp32_artifact_matches_live_plan(self, rng):
        network = PercivalNet.small()
        network.eval()
        artifact = WeightArtifact.from_network(network, "fp32")
        live = compile_inference(network)
        packed = compile_inference(network, artifact=artifact)
        x = rng.standard_normal((2, 4, 32, 32)).astype(np.float32)
        assert np.array_equal(live.run(x), packed.run(x))

    def test_quantized_plan_close_to_reference(self, rng):
        network = PercivalNet.small()
        network.eval()
        x = rng.standard_normal((2, 4, 32, 32)).astype(np.float32)
        reference = compile_inference(network).run(x)
        for precision, tolerance in (("fp16", 1e-2), ("int8", 0.5)):
            artifact = WeightArtifact.from_network(network, precision)
            quantized = compile_inference(network, artifact=artifact)
            assert quantized.run(x).dtype == np.float32
            assert np.abs(quantized.run(x) - reference).max() < tolerance

    def test_artifact_plan_is_a_snapshot(self, rng):
        # in-place parameter updates must NOT flow into an
        # artifact-compiled plan (it dequantized at compile time)
        network = Sequential([Conv2d(2, 3, kernel_size=1, name="c"),
                              GlobalAvgPool2d()])
        network.eval()
        artifact = WeightArtifact.from_network(network, "fp32")
        plan = compile_inference(network, artifact=artifact)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        before = plan.run(x).copy()
        network.layers[0].weight.data += 1.0
        assert np.array_equal(before, plan.run(x))

    def test_mismatched_artifact_rejected(self):
        network = Sequential([Conv2d(2, 3, kernel_size=1, name="c"),
                              GlobalAvgPool2d()])
        other = Sequential([Conv2d(2, 5, kernel_size=1, name="c"),
                            GlobalAvgPool2d()])
        artifact = WeightArtifact.from_network(other, "fp32")
        with pytest.raises(ValueError):
            compile_inference(network, artifact=artifact)


class TestModePropagation:
    """train()/eval() must reach flag-sensitive layers inside composites."""

    def test_eval_reaches_fire_internals(self):
        network = PercivalNet.small()
        network.eval()
        fires = [layer for layer in network.layers
                 if isinstance(layer, FireModule)]
        assert fires
        for fire in fires:
            assert not fire.training
            assert not fire.squeeze_relu.training
            assert not fire.expand_relu.training
        network.train()
        for fire in fires:
            assert fire.squeeze_relu.training
            assert fire.expand_relu.training


class TestDtypeStability:
    """Eval-mode forward must stay float32 end to end on both paths."""

    def test_both_paths_stay_float32(self, rng):
        network = PercivalNet.small()
        network.eval()
        plan = compile_inference(network)
        x = rng.standard_normal((2, 4, 32, 32)).astype(np.float32)
        assert network.forward(x).dtype == np.float32
        assert plan.run(x).dtype == np.float32

    def test_intermediate_layers_stay_float32(self, rng):
        network = PercivalNet.small()
        network.eval()
        network.capture(range(len(network)))
        network.forward(
            rng.standard_normal((1, 4, 32, 32)).astype(np.float32)
        )
        for index in range(len(network)):
            captured = network.captured(index)
            assert captured.dtype == np.float32, f"layer {index} upcast"
        network.capture([])

    def test_empty_batch(self, rng):
        network = PercivalNet.small()
        network.eval()
        plan = compile_inference(network)
        out = plan.run(np.empty((0, 4, 32, 32), dtype=np.float32))
        assert out.shape == (0, 2)
        assert out.dtype == np.float32

    def test_fire_module_infer_matches(self, rng):
        fire = FireModule(6, 3, 8, rng=spawn_rng(0, "fire"))
        fire.training = False
        network = Sequential([fire])
        plan = compile_inference(network)
        x = rng.standard_normal((2, 6, 9, 9)).astype(np.float32)
        reference = network.forward(x)
        fast = plan.run(x)
        assert fast.dtype == np.float32
        assert np.abs(reference - fast).max() < 1e-5
