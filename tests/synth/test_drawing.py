"""Raster primitives."""

import numpy as np
import pytest

from repro.synth import drawing


class TestBlank:
    def test_shape_and_alpha(self):
        img = drawing.blank(10, 20)
        assert img.shape == (10, 20, 4)
        assert (img[..., 3] == 1.0).all()
        assert img.dtype == np.float32

    def test_color_fill(self):
        img = drawing.blank(4, 4, (0.5, 0.25, 0.75))
        assert np.allclose(img[0, 0, :3], [0.5, 0.25, 0.75])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            drawing.blank(0, 5)


class TestFillRect:
    def test_fills_exact_region(self):
        img = drawing.blank(10, 10, (1, 1, 1))
        drawing.fill_rect(img, 2, 3, 4, 5, (0, 0, 0))
        assert (img[3:8, 2:6, :3] == 0).all()
        assert (img[0, 0, :3] == 1).all()

    def test_clips_out_of_bounds(self):
        img = drawing.blank(4, 4)
        drawing.fill_rect(img, -5, -5, 100, 100, (0, 0, 0))
        assert (img[..., :3] == 0).all()

    def test_fully_outside_is_noop(self):
        img = drawing.blank(4, 4)
        drawing.fill_rect(img, 100, 100, 5, 5, (0, 0, 0))
        assert (img[..., :3] == 1).all()

    def test_alpha_blend(self):
        img = drawing.blank(2, 2, (1, 1, 1))
        drawing.fill_rect(img, 0, 0, 2, 2, (0, 0, 0), alpha=0.5)
        assert np.allclose(img[..., :3], 0.5)


class TestGradientAndNoise:
    def test_vertical_gradient_endpoints(self):
        img = drawing.blank(10, 4)
        drawing.linear_gradient(img, (0, 0, 0), (1, 1, 1), vertical=True)
        assert np.allclose(img[0, 0, :3], 0.0)
        assert np.allclose(img[-1, 0, :3], 1.0)

    def test_horizontal_gradient(self):
        img = drawing.blank(4, 10)
        drawing.linear_gradient(img, (0, 0, 0), (1, 1, 1), vertical=False)
        assert np.allclose(img[0, 0, :3], 0.0)
        assert np.allclose(img[0, -1, :3], 1.0)

    def test_noise_stays_in_range(self, rng):
        img = drawing.blank(16, 16, (0.5, 0.5, 0.5))
        drawing.add_noise(img, rng, sigma=0.5)
        assert img[..., :3].min() >= 0.0
        assert img[..., :3].max() <= 1.0

    def test_zero_sigma_noop(self, rng):
        img = drawing.blank(4, 4, (0.3, 0.3, 0.3))
        before = img.copy()
        drawing.add_noise(img, rng, sigma=0.0)
        assert np.array_equal(img, before)


class TestShapes:
    def test_circle_center_filled(self):
        img = drawing.blank(11, 11)
        drawing.draw_circle(img, 5, 5, 3, (0, 0, 0))
        assert (img[5, 5, :3] == 0).all()
        assert (img[0, 0, :3] == 1).all()

    def test_border_frames_canvas(self):
        img = drawing.blank(10, 10)
        drawing.draw_border(img, 1, (0, 0, 0))
        assert (img[0, :, :3] == 0).all()
        assert (img[-1, :, :3] == 0).all()
        assert (img[:, 0, :3] == 0).all()
        assert (img[5, 5, :3] == 1).all()

    def test_smooth_blobs_low_frequency(self, rng):
        img = drawing.smooth_blobs(32, 32, rng, scale=6.0)
        # adjacent-pixel differences should be small (smooth field)
        dx = np.abs(np.diff(img[..., 0], axis=0)).mean()
        assert dx < 0.05


class TestTextAndCues:
    def test_glyph_row_draws_dark_pixels(self, rng):
        img = drawing.blank(10, 40)
        drawing.glyph_row(img, 2, 3, 35, 3, rng, (0, 0, 0))
        region = img[3:6, 2:37, :3]
        assert (region < 0.5).any()

    def test_text_block_multiple_lines(self, rng):
        img = drawing.blank(30, 40)
        drawing.text_block(img, 2, 2, 36, 4, rng, glyph_height=3)
        assert (img[..., :3] < 0.5).sum() > 20

    def test_adchoices_marker_in_top_right(self, rng):
        img = drawing.blank(40, 40, (0.2, 0.6, 0.2))
        drawing.adchoices_marker(img, rng)
        corner = img[:14, 26:, :3]
        rest_mean = img[20:, :20, :3].mean()
        assert abs(corner.mean() - rest_mean) > 0.05

    def test_cta_button_lower_half(self, rng):
        img = drawing.blank(40, 60, (1, 1, 1))
        drawing.cta_button(img, rng, color=(1, 0, 0))
        lower = img[24:, :, 0] - img[24:, :, 1]
        assert lower.max() > 0.5  # red pixels appeared below midline


class TestResize:
    def test_exact_size(self, rng):
        img = rng.random((30, 50, 4)).astype(np.float32)
        out = drawing.resize_bitmap(img, 32, 32)
        assert out.shape == (32, 32, 4)

    def test_identity_when_same_size(self, rng):
        img = rng.random((16, 16, 4)).astype(np.float32)
        out = drawing.resize_bitmap(img, 16, 16)
        assert np.allclose(out, img)
        assert out is not img  # defensive copy

    def test_upscale_and_downscale(self, rng):
        img = rng.random((8, 8, 4)).astype(np.float32)
        assert drawing.resize_bitmap(img, 32, 32).shape == (32, 32, 4)
        big = rng.random((100, 60, 4)).astype(np.float32)
        assert drawing.resize_bitmap(big, 16, 24).shape == (16, 24, 4)

    def test_output_in_range(self, rng):
        img = rng.random((20, 20, 4)).astype(np.float32)
        out = drawing.resize_bitmap(img, 7, 13)
        assert out.min() >= 0.0
        assert out.max() <= 1.0
