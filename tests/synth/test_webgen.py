"""Synthetic web generator."""

import numpy as np
import pytest

from repro.synth.webgen import (
    AD_NETWORKS,
    SyntheticWeb,
    WebConfig,
    url_registry,
)
from repro.synth.languages import Language


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb(WebConfig(seed=11, num_sites=20))


class TestSites:
    def test_site_count(self, web):
        assert len(web.sites()) == 20

    def test_ranks_sequential(self, web):
        assert [s.rank for s in web.top_sites(5)] == [1, 2, 3, 4, 5]

    def test_domains_unique(self, web):
        domains = [s.domain for s in web.sites()]
        assert len(set(domains)) == len(domains)


class TestPages:
    def test_deterministic_rebuild(self, web):
        site = web.top_sites(1)[0]
        a = web.build_page(site, 0)
        b = web.build_page(site, 0)
        assert a.html == b.html
        assert [e.url for e in a.elements] == [e.url for e in b.elements]

    def test_different_pages_differ(self, web):
        site = web.top_sites(1)[0]
        assert web.build_page(site, 0).html != web.build_page(site, 1).html

    def test_element_counts_in_config_range(self, web):
        config = web.config
        page = web.build_page(web.top_sites(1)[0])
        images = page.image_elements()
        assert (config.images_per_page[0] <= len(images)
                <= config.images_per_page[1])

    def test_html_contains_elements(self, web):
        page = web.build_page(web.top_sites(1)[0])
        for element in page.image_elements()[:3]:
            assert element.url in page.html

    def test_iter_pages_yields_requested(self, web):
        pages = list(web.iter_pages(web.top_sites(3), pages_per_site=2))
        assert len(pages) == 6


class TestAdElements:
    def test_ad_fraction_near_config(self):
        web = SyntheticWeb(WebConfig(seed=3, num_sites=30))
        total = ads = 0
        for page in web.iter_pages(web.top_sites(30), 1):
            for element in page.image_elements():
                total += 1
                ads += element.is_ad
        assert abs(ads / total - web.config.ad_image_fraction) < 0.06

    def test_ads_have_specs(self, web):
        for page in web.iter_pages(web.top_sites(5), 1):
            for element in page.ad_elements():
                if element.url:
                    assert element.ad_spec is not None

    def test_third_party_ads_use_network_domains(self, web):
        network_domains = {n.domain for n in AD_NETWORKS}
        for page in web.iter_pages(web.top_sites(5), 1):
            for element in page.ad_elements():
                if element.third_party:
                    host = element.url.split("/")[2]
                    assert host in network_domains

    def test_campaign_pool_creates_repeats(self):
        web = SyntheticWeb(WebConfig(seed=5, num_sites=30,
                                     campaign_pool_size=10))
        urls = []
        for page in web.iter_pages(web.top_sites(30), 1):
            urls.extend(
                e.url for e in page.ad_elements() if e.third_party
            )
        assert len(set(urls)) < len(urls)  # creatives recur

    def test_element_render_deterministic(self, web):
        page = web.build_page(web.top_sites(1)[0])
        element = page.image_elements()[0]
        assert np.array_equal(element.render(), element.render())


class TestLanguageWebs:
    def test_language_propagates(self):
        web = SyntheticWeb(WebConfig(seed=2, num_sites=3,
                                     language=Language.KOREAN,
                                     language_shift=0.7))
        page = web.build_page(web.top_sites(1)[0])
        assert page.language is Language.KOREAN
        for element in page.elements:
            assert element.language is Language.KOREAN


class TestUrlRegistry:
    def test_registry_covers_all_resources(self, web):
        pages = list(web.iter_pages(web.top_sites(3), 1))
        registry = url_registry(pages)
        for page in pages:
            for element in page.image_elements():
                assert element.url in registry

    def test_duplicate_urls_keep_first(self, web):
        pages = list(web.iter_pages(web.top_sites(10), 1))
        registry = url_registry(pages)
        # campaign URLs recur; registry size <= total elements
        total = sum(len(p.image_elements()) for p in pages)
        assert len(registry) <= total
