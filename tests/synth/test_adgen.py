"""Ad creative generator."""

import numpy as np
import pytest

from repro.synth.adgen import (
    AD_SLOT_FORMATS,
    AdSpec,
    NATIVE_STYLE_THRESHOLD,
    generate_ad,
    random_ad_spec,
    render_size,
)
from repro.synth.languages import Language
from repro.utils.rng import spawn_rng


class TestAdSpec:
    def test_slot_size_lookup(self):
        spec = AdSpec(slot_format="leaderboard")
        assert spec.slot_size() == (728, 90)

    def test_unknown_slot_raises(self):
        with pytest.raises(ValueError):
            AdSpec(slot_format="bogus").slot_size()

    def test_random_spec_samples_valid_formats(self, rng):
        for _ in range(50):
            spec = random_ad_spec(rng)
            assert spec.slot_format in AD_SLOT_FORMATS
            assert 0.0 <= spec.cue_strength <= 1.0


class TestRenderSize:
    def test_caps_longest_side(self):
        height, width = render_size(728, 90)
        assert max(height, width) <= 72

    def test_preserves_aspect_direction(self):
        height, width = render_size(160, 600)  # skyscraper: tall
        assert height > width

    def test_minimum_floor(self):
        height, width = render_size(2000, 10)
        assert height >= 8 and width >= 8


class TestGenerateAd:
    def test_output_is_rgba_float(self, rng):
        img = generate_ad(rng, AdSpec())
        assert img.ndim == 3 and img.shape[2] == 4
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_deterministic_under_seeded_rng(self):
        spec = AdSpec(cue_strength=0.8)
        a = generate_ad(spawn_rng(5, "x"), spec)
        b = generate_ad(spawn_rng(5, "x"), spec)
        assert np.array_equal(a, b)

    def test_all_slot_formats_render(self, rng):
        for slot in AD_SLOT_FORMATS:
            img = generate_ad(rng, AdSpec(slot_format=slot))
            assert img.size > 0

    def test_native_style_below_threshold(self):
        """Low-cue ads route through the content renderer (no brand
        gradient) — verified via pixel statistics: native creatives
        have much lower saturation spread than gradient creatives."""
        high = [
            generate_ad(spawn_rng(i, "h"), AdSpec(cue_strength=1.0))
            for i in range(12)
        ]
        low = [
            generate_ad(spawn_rng(i, "l"), AdSpec(cue_strength=0.05))
            for i in range(12)
        ]

        def saturation(img):
            rgb = img[..., :3]
            return float((rgb.max(axis=2) - rgb.min(axis=2)).mean())

        assert np.mean([saturation(i) for i in high]) > np.mean(
            [saturation(i) for i in low]
        )

    def test_language_shift_attenuates_cues(self):
        spec_shifted = AdSpec(cue_strength=0.5, language_shift=0.9)
        # effective cue drops below the native threshold
        effective = 0.5 * (1.0 - 0.8 * 0.9)
        assert effective < NATIVE_STYLE_THRESHOLD
        img = generate_ad(spawn_rng(0, "s"), spec_shifted)
        assert img.size > 0

    def test_languages_render(self, rng):
        for language in (Language.ARABIC, Language.KOREAN,
                         Language.CHINESE):
            img = generate_ad(rng, AdSpec(language=language))
            assert img.size > 0


class TestSlotWeights:
    def test_weights_sum_to_one(self):
        total = sum(w for _, w in AD_SLOT_FORMATS.values())
        assert total == pytest.approx(1.0)

    def test_medium_rectangle_most_common(self, rng):
        counts = {}
        for _ in range(300):
            spec = random_ad_spec(rng)
            counts[spec.slot_format] = counts.get(spec.slot_format, 0) + 1
        assert max(counts, key=counts.get) == "medium_rectangle"
