"""Facebook feed, image search, and external dataset generators."""

import numpy as np
import pytest

from repro.synth.external import ExternalConfig, ExternalDataset
from repro.synth.facebook import FacebookFeed, FeedConfig
from repro.synth.search import (
    ADJUDICATED_QUERIES,
    ImageSearch,
    QUERY_AD_INTENT,
)


class TestFacebookFeed:
    def test_session_size(self):
        feed = FacebookFeed(FeedConfig(seed=1, items_per_session=40))
        assert len(feed.session(0)) == 40

    def test_sessions_deterministic(self):
        feed = FacebookFeed(FeedConfig(seed=1))
        a = feed.session(3)
        b = feed.session(3)
        assert [i.seed for i in a] == [i.seed for i in b]

    def test_days_differ(self):
        feed = FacebookFeed(FeedConfig(seed=1))
        assert ([i.seed for i in feed.session(0)]
                != [i.seed for i in feed.session(1)])

    def test_ad_ground_truth_per_kind(self):
        feed = FacebookFeed(FeedConfig(seed=2))
        for item in feed.session(0):
            if item.kind in ("right_column_ad", "sponsored_post"):
                assert item.is_ad
            else:
                assert not item.is_ad

    def test_ad_fraction_near_paper(self):
        """Paper: 354 ads / 2184 items ≈ 16%."""
        feed = FacebookFeed(FeedConfig(seed=3))
        items = [i for day in feed.browse(10) for i in day]
        fraction = sum(i.is_ad for i in items) / len(items)
        assert 0.10 < fraction < 0.24

    def test_sponsored_cue_below_right_column(self):
        feed = FacebookFeed(FeedConfig(seed=4))
        items = [i for day in feed.browse(5) for i in day]
        sponsored = [i.cue_strength for i in items
                     if i.kind == "sponsored_post"]
        right = [i.cue_strength for i in items
                 if i.kind == "right_column_ad"]
        assert np.mean(sponsored) < np.mean(right)

    def test_items_render(self):
        feed = FacebookFeed(FeedConfig(seed=5))
        for item in feed.session(0)[:8]:
            img = item.render()
            assert img.ndim == 3 and img.shape[2] == 4


class TestImageSearch:
    def test_result_count(self):
        search = ImageSearch(seed=0)
        assert len(search.results("Obama", 50)) == 50

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            ImageSearch().results("Quokkas")

    def test_ad_intent_ordering(self):
        """'Advertisement' results are mostly ads; 'Obama' mostly not."""
        search = ImageSearch(seed=0)
        high = sum(r.is_ad for r in search.results("Advertisement", 100))
        low = sum(r.is_ad for r in search.results("Obama", 100))
        assert high > 85
        assert low < 20

    def test_adjudicated_queries_known(self):
        for query in ADJUDICATED_QUERIES:
            assert query in QUERY_AD_INTENT

    def test_deterministic(self):
        a = ImageSearch(seed=1).results("Shoes", 20)
        b = ImageSearch(seed=1).results("Shoes", 20)
        assert [r.is_ad for r in a] == [r.is_ad for r in b]

    def test_results_render(self):
        for result in ImageSearch(seed=2).results("Coffee", 5):
            assert result.render().size > 0


class TestExternalDataset:
    def test_sample_size(self):
        assert len(ExternalDataset().sample(100)) == 100

    def test_label_noise_rate(self):
        config = ExternalConfig(seed=0, label_noise=0.1)
        samples = ExternalDataset(config).sample(2000)
        flipped = sum(s.annotated_ad != s.truly_ad for s in samples)
        assert 0.06 < flipped / 2000 < 0.14

    def test_balanced_ad_fraction(self):
        samples = ExternalDataset(ExternalConfig(seed=1)).sample(1000)
        ads = sum(s.truly_ad for s in samples)
        assert 400 < ads < 600

    def test_deterministic(self):
        a = ExternalDataset(ExternalConfig(seed=2)).sample(50)
        b = ExternalDataset(ExternalConfig(seed=2)).sample(50)
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_samples_render(self):
        for sample in ExternalDataset().sample(6):
            assert sample.render().size > 0
