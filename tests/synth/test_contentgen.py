"""Non-ad content generator."""

import numpy as np
import pytest

from repro.synth.contentgen import (
    ContentKind,
    generate_content,
    sample_kind,
)
from repro.synth.languages import Language
from repro.utils.rng import spawn_rng


class TestGenerateContent:
    @pytest.mark.parametrize("kind", list(ContentKind))
    def test_every_kind_renders(self, rng, kind):
        img = generate_content(rng, kind=kind)
        assert img.ndim == 3 and img.shape[2] == 4
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_random_kind_when_unspecified(self, rng):
        img = generate_content(rng)
        assert img.size > 0

    def test_deterministic_under_seeded_rng(self):
        a = generate_content(spawn_rng(3, "c"), kind=ContentKind.PHOTO)
        b = generate_content(spawn_rng(3, "c"), kind=ContentKind.PHOTO)
        assert np.array_equal(a, b)

    def test_ad_intent_adds_commercial_cues(self):
        """High ad-intent content carries more saturated-red CTA pixels
        on average (the brand-page false-positive mechanism)."""
        def red_mass(img):
            return float(
                ((img[..., 0] > 0.6) & (img[..., 1] < 0.45)).mean()
            )

        plain = np.mean([
            red_mass(generate_content(
                spawn_rng(i, "p"), kind=ContentKind.PRODUCT_SHOT,
                ad_intent=0.0,
            )) for i in range(20)
        ])
        intent = np.mean([
            red_mass(generate_content(
                spawn_rng(i, "q"), kind=ContentKind.PRODUCT_SHOT,
                ad_intent=1.0,
            )) for i in range(20)
        ])
        assert intent > plain

    def test_language_affects_text_rendering(self, rng):
        img = generate_content(
            rng, kind=ContentKind.SCREENSHOT, language=Language.CHINESE
        )
        assert img.size > 0


class TestSampleKind:
    def test_photo_dominates(self, rng):
        counts = {}
        for _ in range(500):
            kind = sample_kind(rng)
            counts[kind] = counts.get(kind, 0) + 1
        assert max(counts, key=counts.get) is ContentKind.PHOTO

    def test_all_kinds_reachable(self, rng):
        seen = {sample_kind(rng) for _ in range(2000)}
        assert seen == set(ContentKind)
