"""The fault matrix: chaos schedules crossed with the cascade and diff
tiers on/off, golden-verdict equality against fault-free runs, ledger
conservation under Hypothesis-generated schedules, and the full
acceptance scenario (worker kill + tier blackout + latency spike past
the SLO) on both serve fronts.

Strict bit-equality runs use ``CascadeRouter(filter_engine=None)`` and
per-frame rule sources: filterlist hits serve P=1.0 by design, and a
micro-rule shared across *different* frames would serve its compiling
frame's probability — both legitimate cascade behaviours, but not the
invariant under test here, which is that an injected fault never
changes what any individual request is answered with.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.cascade import CascadeRouter, FrameProvenance
from repro.core import InferenceWorkerPool, PercivalBlocker, ServeSettings
from repro.diff import FrameDiffer
from repro.resilience import (
    ChaosEvent,
    ChaosSchedule,
    LadderSettings,
    ResiliencePlane,
)
from repro.serve import (
    PRIORITY_BELOW_FOLD,
    PRIORITY_VIEWPORT,
    ArrivalEvent,
    AsyncServeFront,
    ServeLoop,
    ServeOverloadError,
)

SETTINGS = ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=64, lanes=1)


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 2.0)
    return PercivalBlocker(classifier, **kwargs)


def _frames(count, seed=0, size=(12, 14)):
    rng = np.random.default_rng(seed)
    return [
        rng.random((*size, 4)).astype(np.float32) for _ in range(count)
    ]


def _prov(site, index, width=12, height=14):
    # one rule source per frame index: a compiled micro-rule can only
    # ever answer revisits of the identical bitmap
    return FrameProvenance(
        url=f"https://{site}/slot{index}/ad.png",
        page_domain=site,
        tag="img",
        css_classes=("banner",),
        width=width,
        height=height,
    )


def _event(frames, index, at_ms, priority=PRIORITY_VIEWPORT):
    site = f"site{index % 2}.test"
    return ArrivalEvent(
        at_ms=at_ms,
        session_id=f"s{index % 4}",
        bitmap=frames[index],
        priority=priority,
        provenance=_prov(site, index),
        content_key=f"ck-{index}",
    )


def _trace(frames, burst=24, tail=12, burst_gap=0.5, tail_start=40.0,
           tail_gap=3.0):
    """A dense burst, then a light tail where every other request
    revisits a burst frame (diff/memo food)."""
    events = [
        _event(
            frames, i, i * burst_gap,
            PRIORITY_BELOW_FOLD if i % 3 == 0 else PRIORITY_VIEWPORT,
        )
        for i in range(burst)
    ]
    for j in range(tail):
        index = j if j % 2 == 0 else burst + j // 2
        events.append(_event(frames, index, tail_start + j * tail_gap))
    return events


def _answered(report):
    return {
        r.request_id: r.decision.probability
        for r in report.results
        if r.decision is not None
    }


def _run(classifier, events, *, cascade, diff, chaos, resilience=None,
         compute_model=None, blocker=None):
    loop = ServeLoop(
        blocker if blocker is not None else _blocker(classifier),
        SETTINGS,
        compute_model=compute_model,
        cascade=CascadeRouter(filter_engine=None) if cascade else False,
        differ=FrameDiffer() if diff else False,
        chaos=chaos,
        resilience=resilience if resilience is not None else (
            False if chaos is False else None
        ),
    )
    return loop.run(events)


class TestFaultMatrix:
    @pytest.mark.parametrize("cascade", [False, True])
    @pytest.mark.parametrize("diff", [False, True])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_seeded_chaos_never_moves_a_served_verdict(
        self, untrained_classifier, cascade, diff, seed
    ):
        """Every tier combination, two seeded schedules: any request
        answered in both the fault-free and the chaos run carries the
        bit-identical probability, and both ledgers balance."""
        events = _trace(_frames(36, seed=seed))
        fault_free = _run(
            untrained_classifier, events,
            cascade=cascade, diff=diff, chaos=False,
        )
        schedule = ChaosSchedule.seeded(seed, horizon_ms=60.0)
        chaotic = _run(
            untrained_classifier, events,
            cascade=cascade, diff=diff, chaos=schedule,
        )
        assert fault_free.stats.conserved()
        assert chaotic.stats.conserved()
        baseline, shaken = _answered(fault_free), _answered(chaotic)
        assert shaken, "a chaos run must still answer requests"
        for request_id in baseline.keys() & shaken.keys():
            assert baseline[request_id] == shaken[request_id]

    def test_chaos_replays_bit_identically(self, untrained_classifier):
        events = _trace(_frames(36, seed=3))
        schedule = ChaosSchedule.seeded(11, horizon_ms=60.0)

        def run():
            report = _run(
                untrained_classifier, events,
                cascade=True, diff=True, chaos=schedule,
            )
            return (
                report.makespan_ms,
                [
                    (r.request_id, r.flush_ms, r.complete_ms, r.shed,
                     r.failed,
                     r.decision.probability if r.decision else None)
                    for r in report.results
                ],
            )

        assert run() == run()


@st.composite
def chaos_schedules(draw):
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        fault = draw(st.sampled_from(
            ["tier-outage", "tier-error", "latency-spike"]
        ))
        at_ms = round(draw(st.floats(
            min_value=0.0, max_value=40.0,
            allow_nan=False, allow_infinity=False,
        )), 1)
        target = (
            draw(st.sampled_from(["diff", "cascade", "memo"]))
            if fault in ("tier-outage", "tier-error")
            else ""
        )
        duration_ms = (
            round(draw(st.floats(
                min_value=0.0, max_value=25.0,
                allow_nan=False, allow_infinity=False,
            )), 1)
            if fault in ("tier-outage", "latency-spike")
            else 0.0
        )
        magnitude = (
            draw(st.sampled_from([2.0, 4.0, 8.0]))
            if fault == "latency-spike"
            else 1.0
        )
        events.append(ChaosEvent(
            at_ms=at_ms, fault=fault, target=target,
            duration_ms=duration_ms, magnitude=magnitude,
        ))
    return ChaosSchedule(events)


class TestConservationProperty:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return _trace(_frames(24, seed=17), burst=16, tail=8,
                      tail_start=30.0)

    @pytest.fixture(scope="class")
    def small_baseline(self, untrained_classifier, small_trace):
        report = _run(
            untrained_classifier, small_trace,
            cascade=True, diff=True, chaos=False,
        )
        return _answered(report)

    @hyp_settings(max_examples=12, deadline=None)
    @given(schedule=chaos_schedules())
    def test_every_schedule_conserves_and_preserves_verdicts(
        self, untrained_classifier, small_trace, small_baseline, schedule
    ):
        report = _run(
            untrained_classifier, small_trace,
            cascade=True, diff=True, chaos=schedule,
        )
        stats = report.stats
        assert stats.conserved()
        assert stats.submitted == len(small_trace)
        served = _answered(report)
        for request_id in small_baseline.keys() & served.keys():
            assert small_baseline[request_id] == served[request_id]


ACCEPTANCE_LADDER = LadderSettings(
    slo_ms=10.0,
    percentile=95.0,
    window=8,
    min_samples=2,
    recover_headroom=0.8,
    min_dwell_ms=4.0,
    widen_factor=2.0,
)

ACCEPTANCE_SCHEDULE = ChaosSchedule([
    ChaosEvent(at_ms=0.0, fault="worker-death", target="0"),
    ChaosEvent(at_ms=4.0, fault="latency-spike", duration_ms=28.0,
               magnitude=20.0),
    ChaosEvent(at_ms=6.0, fault="tier-outage", target="diff",
               duration_ms=20.0),
    ChaosEvent(at_ms=6.0, fault="tier-outage", target="cascade",
               duration_ms=20.0),
])


def _ladder_counts(plane):
    downs = sum(
        1 for t in plane.controller.transitions if t.direction == "down"
    )
    ups = sum(
        1 for t in plane.controller.transitions if t.direction == "up"
    )
    return downs, ups


class TestAcceptanceScenario:
    def test_serve_loop_full_scenario(self, untrained_classifier):
        """The issue's acceptance replay: a worker killed mid-batch, a
        diff+cascade blackout, and a latency spike far past the SLO.
        The trace completes, every served P(ad) is bit-identical to
        the fault-free run, the ledger balances, and the ladder steps
        down and back up at least twice each."""
        frames = _frames(72, seed=41)
        events = _trace(
            frames, burst=48, tail=24, burst_gap=0.5,
            tail_start=60.0, tail_gap=4.0,
        )
        fault_free = _run(
            untrained_classifier, events,
            cascade=True, diff=True, chaos=False,
            compute_model=lambda n: 2.0,
        )
        assert fault_free.stats.conserved()

        plane = ResiliencePlane(ladder=ACCEPTANCE_LADDER)
        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            pool.publish(untrained_classifier)
            blocker = _blocker(
                untrained_classifier, pool=pool, shard_min_batch=4
            )
            report = _run(
                untrained_classifier, events,
                cascade=True, diff=True,
                chaos=ACCEPTANCE_SCHEDULE, resilience=plane,
                compute_model=lambda n: 2.0, blocker=blocker,
            )
            assert blocker.pool_fallbacks == 1  # the mid-batch kill

        stats = report.stats
        assert stats.conserved()
        assert stats.submitted == len(events)
        assert plane.chaos_injected == len(ACCEPTANCE_SCHEDULE)
        baseline, shaken = _answered(fault_free), _answered(report)
        assert shaken
        for request_id in baseline.keys() & shaken.keys():
            assert baseline[request_id] == shaken[request_id]
        downs, ups = _ladder_counts(plane)
        assert downs >= 2, plane.controller.transitions
        assert ups >= 2, plane.controller.transitions
        # the dwell ledger closed: time was actually spent browned out
        assert sum(plane.controller.dwell_ms.values()) > 0.0

    def test_async_front_full_scenario(self, untrained_classifier):
        """Same faults against the asyncio front on its real-ms clock.
        The invariant here is value-independence: every future that
        resolves carries the fault-free probability, the ledger
        balances, and the ladder visibly steps down and recovers."""
        frames = _frames(40, seed=31)
        reference = _blocker(untrained_classifier)
        expected = [
            reference.decide(frame).probability for frame in frames
        ]
        schedule = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="worker-death", target="0"),
            ChaosEvent(at_ms=0.0, fault="tier-outage", target="diff",
                       duration_ms=60_000.0),
            ChaosEvent(at_ms=0.0, fault="tier-outage", target="cascade",
                       duration_ms=60_000.0),
            ChaosEvent(at_ms=0.0, fault="latency-spike",
                       duration_ms=60_000.0, magnitude=8.0),
        ])
        # real-clock run: the SLO is unreachable so recovery rides the
        # healthy-window path, and downs come from overflow pressure —
        # both deterministic in outcome, neither timing-sensitive
        ladder = LadderSettings(
            slo_ms=60_000.0, percentile=95.0, window=8, min_samples=1,
            recover_headroom=0.5, min_dwell_ms=0.0,
        )
        plane = ResiliencePlane(ladder=ladder)
        settings = ServeSettings(max_batch=4, max_wait_ms=5.0, max_depth=4)

        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            pool.publish(untrained_classifier)
            blocker = _blocker(
                untrained_classifier, pool=pool, shard_min_batch=4
            )
            front = AsyncServeFront(
                blocker, settings,
                cascade=CascadeRouter(filter_engine=None),
                differ=FrameDiffer(),
                chaos=schedule, resilience=plane,
            )

            async def drive():
                async def one(index):
                    try:
                        decision = await front.submit(
                            frames[index], session_id=f"s{index % 3}"
                        )
                    except ServeOverloadError:
                        return None
                    assert decision.probability == expected[index]
                    return decision.probability

                # phase A: overflow bursts past max_depth -> pressure
                # sheds -> ladder steps down
                await asyncio.gather(*(one(i) for i in range(12)))
                await asyncio.sleep(0.005)
                await asyncio.gather(*(one(i) for i in range(12, 24)))
                await front.drain()
                downs, _ = _ladder_counts(plane)
                assert downs >= 2, plane.controller.transitions

                # phase B: a light trickle; every settle reads a
                # comfortable window (or an idle one) and steps up
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 20.0
                index = 24
                while (
                    _ladder_counts(plane)[1] < 2
                    and loop.time() < deadline
                ):
                    await asyncio.sleep(0.01)
                    await one(index % len(frames))
                    index += 1
                await front.aclose()

            asyncio.run(drive())
            assert blocker.pool_fallbacks >= 1  # the mid-batch kill

        stats = front.stats
        assert stats.conserved()
        assert stats.shed > 0  # overflow and/or brownout sheds
        downs, ups = _ladder_counts(plane)
        assert downs >= 2, plane.controller.transitions
        assert ups >= 2, plane.controller.transitions
