"""The deterministic chaos plane: seeded schedules, cursor window
semantics, environment resolution, and the standing serve invariant —
an injected fault moves *where or whether* work happens, never the
value of a served P(ad)."""

import numpy as np
import pytest

from repro.core import (
    InferenceWorkerPool,
    PercivalBlocker,
    ServeSettings,
)
from repro.resilience import (
    ChaosEvent,
    ChaosSchedule,
    ResiliencePlane,
    resolve_chaos,
    resolve_resilience,
)
from repro.serve import ArrivalEvent, ServeLoop

SETTINGS = ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=256, lanes=1)


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 2.0)
    return PercivalBlocker(classifier, **kwargs)


def _frames(count, seed=0, size=(12, 14)):
    rng = np.random.default_rng(seed)
    return [
        rng.random((*size, 4)).astype(np.float32) for _ in range(count)
    ]


def _steady_events(frames, gap_ms=1.0, session="s0"):
    return [
        ArrivalEvent(at_ms=index * gap_ms, session_id=session, bitmap=frame)
        for index, frame in enumerate(frames)
    ]


def _served(report):
    """(request_id, probability) for every answered request."""
    return [
        (r.request_id, r.decision.probability)
        for r in report.results
        if r.decision is not None
    ]


class TestEventValidation:
    def test_rejects_malformed_events(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_ms=0.0, fault="meteor-strike")
        with pytest.raises(ValueError):
            ChaosEvent(at_ms=-1.0, fault="latency-spike")
        with pytest.raises(ValueError):
            ChaosEvent(at_ms=0.0, fault="tier-outage", target="pool")
        with pytest.raises(ValueError):
            ChaosEvent(at_ms=0.0, fault="latency-spike", magnitude=0.0)

    def test_worker_index_parses_target(self):
        assert ChaosEvent(at_ms=0.0, fault="worker-death").worker_index == 0
        assert ChaosEvent(
            at_ms=0.0, fault="worker-death", target="3"
        ).worker_index == 3


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        assert ChaosSchedule.seeded(7) == ChaosSchedule.seeded(7)
        assert ChaosSchedule.seeded(7) != ChaosSchedule.seeded(8)

    def test_events_are_time_sorted(self):
        schedule = ChaosSchedule([
            ChaosEvent(at_ms=30.0, fault="latency-spike", duration_ms=5.0),
            ChaosEvent(at_ms=10.0, fault="tier-outage", target="memo",
                       duration_ms=5.0),
        ])
        assert [event.at_ms for event in schedule] == [10.0, 30.0]
        assert "chaos schedule (2 events)" in schedule.describe()

    def test_cursors_are_independent_replays(self):
        schedule = ChaosSchedule.seeded(3)
        first, second = schedule.cursor(), schedule.cursor()
        first.fire_due(1e9)
        assert len(first.fired) == len(schedule)
        assert second.next_at_ms() == schedule.events[0].at_ms
        assert second.fired == []


class TestCursorWindows:
    def test_outage_anchors_on_the_event_tick(self):
        """A clock that jumps straight past a short outage must see it
        already expired — windows anchor on at_ms, not observation."""
        cursor = ChaosSchedule([
            ChaosEvent(at_ms=10.0, fault="tier-outage", target="memo",
                       duration_ms=5.0),
        ]).cursor()
        cursor.fire_due(40.0)  # observed late
        assert not cursor.tier_out("memo", 40.0)
        # a second replay observed on time sees the window open
        cursor = ChaosSchedule([
            ChaosEvent(at_ms=10.0, fault="tier-outage", target="memo",
                       duration_ms=5.0),
        ]).cursor()
        cursor.fire_due(10.0)
        assert cursor.tier_out("memo", 12.0)
        assert not cursor.tier_out("memo", 15.0)

    def test_overlapping_outages_max_merge(self):
        cursor = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="tier-outage", target="diff",
                       duration_ms=20.0),
            ChaosEvent(at_ms=5.0, fault="tier-outage", target="diff",
                       duration_ms=5.0),
        ]).cursor()
        cursor.fire_due(5.0)
        assert cursor.tier_out("diff", 15.0)  # the longer window rules

    def test_tier_errors_are_consumed_one_shot(self):
        cursor = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="tier-error", target="cascade"),
        ]).cursor()
        cursor.fire_due(0.0)
        assert cursor.take_tier_error("cascade")
        assert not cursor.take_tier_error("cascade")
        assert not cursor.take_tier_error("diff")

    def test_latency_spikes_take_the_worst_and_expire(self):
        cursor = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="latency-spike", duration_ms=10.0,
                       magnitude=4.0),
            ChaosEvent(at_ms=2.0, fault="latency-spike", duration_ms=20.0,
                       magnitude=2.0),
        ]).cursor()
        cursor.fire_due(2.0)
        assert cursor.latency_multiplier(5.0) == 4.0   # worst, not product
        assert cursor.latency_multiplier(15.0) == 2.0  # first expired
        assert cursor.latency_multiplier(30.0) == 1.0


class TestEnvironmentResolution:
    def test_resolve_chaos_off_paths(self, untrained_classifier, monkeypatch):
        config = untrained_classifier.config
        monkeypatch.delenv("PERCIVAL_CHAOS", raising=False)
        assert resolve_chaos(None, config) is None
        assert resolve_chaos(False, config) is None
        monkeypatch.setenv("PERCIVAL_CHAOS", "off")
        assert resolve_chaos(None, config) is None
        monkeypatch.setenv("PERCIVAL_CHAOS", "23")
        assert resolve_chaos(False, config) is None  # pinned off wins

    def test_resolve_chaos_env_seed(self, untrained_classifier, monkeypatch):
        config = untrained_classifier.config
        monkeypatch.setenv("PERCIVAL_CHAOS", "23")
        assert resolve_chaos(None, config) == ChaosSchedule.seeded(23)
        schedule = ChaosSchedule.seeded(1)
        assert resolve_chaos(schedule, config) is schedule
        with pytest.raises(TypeError):
            resolve_chaos("on", config)

    def test_resolve_resilience_paths(
        self, untrained_classifier, monkeypatch
    ):
        config = untrained_classifier.config
        monkeypatch.delenv("PERCIVAL_RESILIENCE", raising=False)
        assert resolve_resilience(None, config) is None
        assert resolve_resilience(None, config, chaos_active=True) is not None
        assert resolve_resilience(False, config, chaos_active=True) is None
        monkeypatch.setenv("PERCIVAL_RESILIENCE", "on")
        assert resolve_resilience(None, config) is not None
        plane = ResiliencePlane()
        assert resolve_resilience(plane, config) is plane

    def test_serve_loop_picks_up_the_env_knob(
        self, untrained_classifier, monkeypatch
    ):
        monkeypatch.setenv("PERCIVAL_CHAOS", "5")
        loop = ServeLoop(_blocker(untrained_classifier), SETTINGS)
        assert loop.chaos == ChaosSchedule.seeded(5)
        assert loop.resilience is not None  # chaos implies the plane

    def test_chaos_off_is_byte_identical_to_the_seed_path(
        self, untrained_classifier, monkeypatch
    ):
        """``PERCIVAL_CHAOS=off`` (and unset) replay the exact same
        trace as a loop built before the chaos plane existed."""
        events = _steady_events(_frames(10, seed=4), gap_ms=0.7)
        monkeypatch.delenv("PERCIVAL_CHAOS", raising=False)
        baseline = ServeLoop(
            _blocker(untrained_classifier), SETTINGS
        ).run(events)
        monkeypatch.setenv("PERCIVAL_CHAOS", "off")
        pinned = ServeLoop(
            _blocker(untrained_classifier), SETTINGS
        ).run(events)
        assert pinned.makespan_ms == baseline.makespan_ms
        assert [
            (r.request_id, r.flush_ms, r.complete_ms,
             r.decision.probability)
            for r in pinned.results
        ] == [
            (r.request_id, r.flush_ms, r.complete_ms,
             r.decision.probability)
            for r in baseline.results
        ]


class TestServeInvariants:
    def test_memo_outage_moves_hits_not_values(self, untrained_classifier):
        """A memo blackout forces re-computation of duplicates the memo
        would have answered — fewer memo hits, identical verdicts."""
        frames = _frames(4, seed=9)
        events = _steady_events(frames, gap_ms=1.0) + [
            ArrivalEvent(at_ms=60.0 + i, session_id="later", bitmap=frame)
            for i, frame in enumerate(frames)
        ]
        fault_free = ServeLoop(
            _blocker(untrained_classifier), SETTINGS,
            chaos=False, resilience=False,
        ).run(events)
        assert fault_free.stats.memo_hits == len(frames)
        blackout = ChaosSchedule([
            ChaosEvent(at_ms=50.0, fault="tier-outage", target="memo",
                       duration_ms=100.0),
        ])
        chaotic = ServeLoop(
            _blocker(untrained_classifier), SETTINGS, chaos=blackout,
        ).run(events)
        assert chaotic.stats.memo_hits == 0
        assert chaotic.stats.conserved()
        assert _served(chaotic) == _served(fault_free)

    def test_latency_spike_stretches_time_not_verdicts(
        self, untrained_classifier
    ):
        events = _steady_events(_frames(12, seed=2), gap_ms=0.5)
        fault_free = ServeLoop(
            _blocker(untrained_classifier), SETTINGS,
            compute_model=lambda n: 2.0, chaos=False, resilience=False,
        ).run(events)
        spike = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="latency-spike", duration_ms=50.0,
                       magnitude=8.0),
        ])
        chaotic = ServeLoop(
            _blocker(untrained_classifier), SETTINGS,
            compute_model=lambda n: 2.0, chaos=spike,
        ).run(events)
        assert chaotic.makespan_ms > fault_free.makespan_ms
        assert chaotic.stats.conserved()
        assert _served(chaotic) == _served(fault_free)

    def test_worker_death_falls_back_with_identical_verdicts(
        self, untrained_classifier
    ):
        """The planned mid-batch kill: the armed worker dies on its
        next dispatch, the blocker falls back in-process exactly once,
        and no served value moves."""
        frames = _frames(8, seed=5)
        events = [
            ArrivalEvent(at_ms=0.0, session_id="s0", bitmap=frame)
            for frame in frames
        ]
        reference = ServeLoop(
            _blocker(untrained_classifier), SETTINGS,
            chaos=False, resilience=False,
        ).run(events)
        kill = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="worker-death", target="0"),
        ])
        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            pool.publish(untrained_classifier)
            blocker = _blocker(
                untrained_classifier, pool=pool, shard_min_batch=4
            )
            report = ServeLoop(blocker, SETTINGS, chaos=kill).run(events)
            assert blocker.pool_fallbacks == 1
        assert report.stats.conserved()
        assert _served(report) == _served(reference)

    def test_publish_failure_heals_without_changing_verdicts(
        self, untrained_classifier
    ):
        frames = _frames(8, seed=6)
        events = [
            ArrivalEvent(at_ms=0.0, session_id="s0", bitmap=frame)
            for frame in frames
        ]
        reference = ServeLoop(
            _blocker(untrained_classifier), SETTINGS,
            chaos=False, resilience=False,
        ).run(events)
        fail_publish = ChaosSchedule([
            ChaosEvent(at_ms=0.0, fault="publish-fail"),
        ])
        with InferenceWorkerPool(num_workers=2, timeout_s=10.0) as pool:
            blocker = _blocker(
                untrained_classifier, pool=pool, shard_min_batch=4
            )
            report = ServeLoop(
                blocker, SETTINGS, chaos=fail_publish
            ).run(events)
            assert blocker.pool_fallbacks >= 1
        assert report.stats.conserved()
        assert _served(report) == _served(reference)
