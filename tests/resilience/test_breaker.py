"""The per-tier circuit breaker state machine, driven over explicit
virtual time: trip on windowed failures, reject while open, admit one
half-open probe after the cooldown, and reopen on a deterministic
exponential schedule when the probe fails."""

import pytest

from repro.resilience import BreakerSettings, TierBreaker

FAST = BreakerSettings(
    window=4,
    trip_failures=2,
    cooldown_ms=10.0,
    cooldown_backoff=2.0,
    max_cooldown_ms=40.0,
)


def _trip(breaker, now_ms=0.0):
    """Admit and fail enough calls to trip the breaker open."""
    for _ in range(breaker.settings.trip_failures):
        assert breaker.allow(now_ms)
        breaker.record(now_ms, ok=False)
    assert breaker.state == "open"


class TestSettingsValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            BreakerSettings(window=0)
        with pytest.raises(ValueError):
            BreakerSettings(window=4, trip_failures=5)
        with pytest.raises(ValueError):
            BreakerSettings(cooldown_ms=0.0)
        with pytest.raises(ValueError):
            BreakerSettings(cooldown_backoff=0.5)
        with pytest.raises(ValueError):
            BreakerSettings(cooldown_ms=50.0, max_cooldown_ms=10.0)


class TestTripAndReject:
    def test_closed_admits_and_counts_outcomes(self):
        breaker = TierBreaker("pool", FAST)
        assert breaker.state == "closed"
        for _ in range(8):
            assert breaker.allow(0.0)
            breaker.record(0.0, ok=True)
        assert breaker.state == "closed"
        assert breaker.successes == 8
        assert breaker.trips == 0

    def test_trips_after_windowed_failures(self):
        breaker = TierBreaker("pool", FAST)
        _trip(breaker)
        assert breaker.trips == 1
        assert breaker.failures == FAST.trip_failures

    def test_old_failures_age_out_of_the_window(self):
        """Failures separated by a full window of successes never trip:
        the deque evicts them before the second failure lands."""
        breaker = TierBreaker("pool", FAST)
        for round_ in range(3):
            assert breaker.allow(0.0)
            breaker.record(0.0, ok=False)
            for _ in range(FAST.window):
                assert breaker.allow(0.0)
                breaker.record(0.0, ok=True)
        assert breaker.state == "closed"
        assert breaker.trips == 0

    def test_open_rejects_until_cooldown(self):
        breaker = TierBreaker("pool", FAST)
        _trip(breaker, now_ms=100.0)
        assert breaker.reopen_at_ms() == 100.0 + FAST.cooldown_ms
        assert not breaker.allow(100.0)
        assert not breaker.allow(100.0 + FAST.cooldown_ms - 0.01)
        assert breaker.rejections == 2
        assert breaker.state == "open"

    def test_outcomes_admitted_before_the_trip_do_not_flap(self):
        """A slow call admitted while closed may report after the trip;
        its outcome must not reopen, re-close, or re-trip anything."""
        breaker = TierBreaker("pool", FAST)
        assert breaker.allow(0.0)  # in flight across the trip
        _trip(breaker, now_ms=0.0)
        breaker.record(0.0, ok=True)
        assert breaker.state == "open"
        breaker.record(0.0, ok=False)
        assert breaker.state == "open"
        assert breaker.trips == 1


class TestHalfOpenProbe:
    def test_cooldown_elapse_admits_exactly_one_probe(self):
        breaker = TierBreaker("cascade", FAST)
        _trip(breaker, now_ms=0.0)
        probe_at = FAST.cooldown_ms
        assert breaker.allow(probe_at)
        assert breaker.state == "half-open"
        assert breaker.probes == 1
        # the probe's outcome is unrecorded: everything else rejects
        assert not breaker.allow(probe_at)
        assert not breaker.allow(probe_at + 5.0)

    def test_probe_success_closes_and_resets(self):
        breaker = TierBreaker("cascade", FAST)
        _trip(breaker, now_ms=0.0)
        assert breaker.allow(FAST.cooldown_ms)
        breaker.record(FAST.cooldown_ms, ok=True)
        assert breaker.state == "closed"
        assert breaker.cooldown_ms == FAST.cooldown_ms
        # the window was cleared: one fresh failure is not a trip
        assert breaker.allow(FAST.cooldown_ms)
        breaker.record(FAST.cooldown_ms, ok=False)
        assert breaker.state == "closed"

    def test_probe_failure_reopens_with_doubled_cooldown(self):
        breaker = TierBreaker("cascade", FAST)
        _trip(breaker, now_ms=0.0)
        now = FAST.cooldown_ms
        assert breaker.allow(now)
        breaker.record(now, ok=False)
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.cooldown_ms == FAST.cooldown_ms * 2.0
        assert breaker.reopen_at_ms() == now + FAST.cooldown_ms * 2.0

    def test_reopen_schedule_is_capped(self):
        breaker = TierBreaker("diff", FAST)
        _trip(breaker, now_ms=0.0)
        now = 0.0
        for _ in range(6):  # enough failed probes to hit the ceiling
            now = breaker.reopen_at_ms()
            assert breaker.allow(now)
            breaker.record(now, ok=False)
        assert breaker.cooldown_ms == FAST.max_cooldown_ms

    def test_deterministic_replay(self):
        """The same outcome sequence at the same times produces the
        same states and counters — no wall clock anywhere."""
        def drive(breaker):
            trace = []
            now = 0.0
            for step in range(30):
                now += 3.0
                if breaker.allow(now):
                    breaker.record(now, ok=step % 3 == 0)
                trace.append((breaker.state, breaker.trips,
                              breaker.rejections, breaker.cooldown_ms))
            return trace

        assert drive(TierBreaker("x", FAST)) == drive(TierBreaker("x", FAST))


class TestPeekAndRebase:
    def test_peek_is_non_mutating(self):
        breaker = TierBreaker("diff", FAST)
        _trip(breaker, now_ms=0.0)
        rejections = breaker.rejections
        assert not breaker.peek(0.0)
        assert breaker.peek(FAST.cooldown_ms)
        # still open, no probe claimed, no rejection counted
        assert breaker.state == "open"
        assert breaker.probes == 0
        assert breaker.rejections == rejections
        # the real probe is still available after any number of peeks
        assert breaker.allow(FAST.cooldown_ms)
        assert not breaker.peek(FAST.cooldown_ms)  # probe in flight

    def test_rebase_restarts_an_open_cooldown(self):
        """A plane shared across fleet epochs sees the next epoch's
        clock restart at zero; an open breaker's anchor must clamp or
        its cooldown would sit unreachable in the future."""
        breaker = TierBreaker("pool", FAST)
        _trip(breaker, now_ms=500.0)
        breaker.rebase(0.0)
        assert breaker.reopen_at_ms() == FAST.cooldown_ms
        assert not breaker.allow(0.0)
        assert breaker.allow(FAST.cooldown_ms)

    def test_rebase_leaves_closed_state_alone(self):
        breaker = TierBreaker("pool", FAST)
        breaker.allow(5.0)
        breaker.record(5.0, ok=True)
        breaker.rebase(0.0)
        assert breaker.state == "closed"
        assert breaker.allow(0.0)
