"""The graceful-degradation ladder: SLO-breach steps down, hysteretic
recovery steps up, min-dwell damping, level flags, and the dwell
ledger — all over explicit virtual time."""

import pytest

from repro.resilience import DegradationController, LadderSettings
from repro.resilience.degrade import LEVELS

FAST = LadderSettings(
    slo_ms=50.0,
    percentile=95.0,
    window=8,
    min_samples=2,
    recover_headroom=0.5,
    min_dwell_ms=10.0,
    widen_factor=4.0,
)


def _controller():
    return DegradationController(FAST)


def _breach(controller, now_ms, value_ms=200.0):
    for _ in range(FAST.min_samples):
        controller.observe_latency(value_ms)
    return controller.evaluate(now_ms)


class TestSettingsValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            LadderSettings(slo_ms=0.0)
        with pytest.raises(ValueError):
            LadderSettings(percentile=0.0)
        with pytest.raises(ValueError):
            LadderSettings(window=0)
        with pytest.raises(ValueError):
            LadderSettings(recover_headroom=1.0)
        with pytest.raises(ValueError):
            LadderSettings(min_dwell_ms=-1.0)
        with pytest.raises(ValueError):
            LadderSettings(widen_factor=0.5)


class TestSteppingDown:
    def test_percentile_breach_steps_one_level(self):
        controller = _controller()
        assert _breach(controller, now_ms=20.0)
        assert controller.level == 1
        assert controller.level_name == "widen-deadlines"
        transition = controller.transitions[-1]
        assert transition.direction == "down"
        assert "slo" in transition.reason

    def test_pressure_steps_without_samples(self):
        controller = _controller()
        controller.observe_pressure("queue overflow shed")
        assert controller.evaluate(20.0)
        assert controller.level == 1
        assert controller.transitions[-1].reason == "queue overflow shed"

    def test_pressure_is_consumed_by_one_evaluate(self):
        controller = _controller()
        controller.observe_pressure("breaker tripped")
        assert controller.evaluate(20.0)
        # inside the idle-recovery horizon: no second step either way
        assert not controller.evaluate(20.0 + 1.5 * FAST.min_dwell_ms)
        assert controller.level == 1

    def test_one_step_per_evaluate_and_dwell_gating(self):
        """A sustained storm walks down one dwell-spaced level at a
        time — never two levels in one evaluate, never inside the
        dwell window of the previous step."""
        controller = _controller()
        now = 20.0
        levels = []
        for _ in range(8):
            _breach(controller, now)
            controller.evaluate(now + FAST.min_dwell_ms / 2.0)  # damped
            levels.append(controller.level)
            now += FAST.min_dwell_ms
        assert levels == [1, 2, 3, 4, 5, 5, 5, 5]  # floor is the last rung

    def test_insufficient_samples_never_breach(self):
        controller = _controller()
        controller.observe_latency(10_000.0)  # < min_samples
        assert not controller.evaluate(20.0)
        assert controller.level == 0


class TestSteppingUp:
    def test_recovery_needs_headroom_not_just_slo(self):
        """Hysteresis: a window merely under the SLO holds the level;
        only comfortably under (headroom fraction) steps up."""
        controller = _controller()
        _breach(controller, 20.0)
        for _ in range(FAST.min_samples):
            controller.observe_latency(FAST.slo_ms * 0.8)  # ok, not great
        assert not controller.evaluate(40.0)
        assert controller.level == 1
        # a full window of comfortable latencies evicts the mediocre ones
        for _ in range(FAST.window):
            controller.observe_latency(FAST.slo_ms * 0.2)
        assert controller.evaluate(60.0)
        assert controller.level == 0
        assert controller.transitions[-1].direction == "up"

    def test_idle_recovery_probes_after_double_dwell(self):
        """At a level where nothing computes anymore the window stays
        empty; after two quiet dwell periods the ladder steps up to
        let work flow and find out whether the storm passed."""
        controller = _controller()
        controller.observe_pressure("x")
        controller.evaluate(20.0)
        assert controller.level == 1
        assert not controller.evaluate(20.0 + 2.0 * FAST.min_dwell_ms - 1.0)
        assert controller.evaluate(20.0 + 2.0 * FAST.min_dwell_ms)
        assert controller.level == 0
        assert controller.transitions[-1].reason == "idle recovery probe"

    def test_samples_clear_on_transition(self):
        """Latencies observed under the old regime must not justify
        the next step — each level re-earns its own evidence."""
        controller = _controller()
        for _ in range(FAST.window):
            controller.observe_latency(500.0)
        controller.evaluate(20.0)
        assert controller.level == 1
        # the breach window is gone: no immediate second step later
        for _ in range(FAST.min_samples - 1):
            controller.observe_latency(500.0)
        assert not controller.evaluate(20.0 + FAST.min_dwell_ms)

    def test_pressure_blocks_recovery(self):
        controller = _controller()
        controller.observe_pressure("x")
        controller.evaluate(20.0)
        for _ in range(FAST.min_samples):
            controller.observe_latency(1.0)
        controller.observe_pressure("still burning")
        # healthy window + pressure: the pressure wins, one level down
        assert controller.evaluate(40.0)
        assert controller.level == 2


class TestLevelFlags:
    def test_flags_accumulate_down_the_ladder(self):
        controller = _controller()
        expected = {
            0: (1.0, False, False, False, False),
            1: (FAST.widen_factor, False, False, False, False),
            2: (FAST.widen_factor, True, False, False, False),
            3: (FAST.widen_factor, True, True, False, False),
            4: (FAST.widen_factor, True, True, True, False),
            5: (FAST.widen_factor, True, True, True, True),
        }
        now = 20.0
        for level in range(len(LEVELS)):
            assert controller.level == level
            assert expected[level] == (
                controller.deadline_scale,
                controller.diff_disabled,
                controller.cascade_disabled,
                controller.drop_below_fold,
                controller.shed_all,
            )
            controller.observe_pressure("down")
            controller.evaluate(now)
            now += FAST.min_dwell_ms


class TestDwellLedger:
    def test_finalize_closes_the_ledger(self):
        controller = _controller()
        controller.observe_pressure("x")
        controller.evaluate(30.0)   # normal for 30ms
        controller.observe_pressure("x")
        controller.evaluate(50.0)   # widen-deadlines for 20ms
        controller.finalize(65.0)   # no-diff for 15ms
        assert controller.dwell_ms["normal"] == 30.0
        assert controller.dwell_ms["widen-deadlines"] == 20.0
        assert controller.dwell_ms["no-diff"] == 15.0
        assert controller.dwell_ms["shed"] == 0.0

    def test_rebase_reanchors_without_touching_the_ledger(self):
        controller = _controller()
        controller.observe_pressure("x")
        controller.evaluate(30.0)
        controller.finalize(40.0)
        ledger = dict(controller.dwell_ms)
        controller.rebase(0.0)
        assert controller.dwell_ms == ledger
        assert controller.level == 1
        controller.finalize(5.0)
        assert controller.dwell_ms["widen-deadlines"] == (
            ledger["widen-deadlines"] + 5.0
        )

    def test_replay_determinism(self):
        def drive(controller):
            now = 0.0
            for step in range(40):
                now += 7.0
                controller.observe_latency(300.0 if step < 15 else 2.0)
                if step == 20:
                    controller.observe_pressure("spike")
                controller.evaluate(now)
            controller.finalize(now)
            return (
                [(t.at_ms, t.from_level, t.to_level, t.reason)
                 for t in controller.transitions],
                controller.dwell_ms,
            )

        assert drive(_controller()) == drive(_controller())
