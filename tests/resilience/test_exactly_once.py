"""Exactly-once settlement under mid-flush failure.

A popped batch settles a leader plus its coalesced riders.  The
regression surface: a ``decide_many`` that raises after the pop, or a
tier feedback write (``differ.remember`` / cascade feed) that raises
after some of the group already settled.  Every future and every
simulated result must resolve exactly once — answered, failed, or
shed — and the ledger must balance."""

import asyncio

import numpy as np
import pytest

from repro.core import PercivalBlocker, ServeSettings
from repro.diff import FrameDiffer
from repro.resilience import ChaosSchedule, ResiliencePlane
from repro.serve import (
    ArrivalEvent,
    AsyncServeFront,
    ServeLoop,
)

SETTINGS = ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=32, lanes=1)


def _blocker(classifier, **kwargs):
    kwargs.setdefault("calibrated_latency_ms", 2.0)
    return PercivalBlocker(classifier, **kwargs)


def _frames(count, seed=0, size=(12, 14)):
    rng = np.random.default_rng(seed)
    return [
        rng.random((*size, 4)).astype(np.float32) for _ in range(count)
    ]


class TestServeLoopFailedBatches:
    def test_failed_batch_settles_leader_and_riders_exactly_once(
        self, untrained_classifier, monkeypatch
    ):
        """decide_many raising mid-flush (with the resilience plane on)
        settles every member — including coalesced riders — as an
        explicit failure, frees the lane, and balances the ledger."""
        frames = _frames(3, seed=1)
        events = [
            ArrivalEvent(at_ms=0.0, session_id="s0", bitmap=frames[0]),
            # same bitmap, same tick: coalesces as a rider
            ArrivalEvent(at_ms=0.0, session_id="s1", bitmap=frames[0]),
            ArrivalEvent(at_ms=0.1, session_id="s0", bitmap=frames[1]),
            ArrivalEvent(at_ms=0.2, session_id="s0", bitmap=frames[2]),
        ]
        blocker = _blocker(untrained_classifier)

        def broken(*args, **kwargs):
            raise RuntimeError("injected mid-flush failure")

        monkeypatch.setattr(blocker, "decide_many", broken)
        # tiers and chaos pinned off: the counter assertions below are
        # exact, and must hold under any ambient PERCIVAL_* knobs
        report = ServeLoop(
            blocker, SETTINGS, cascade=False, differ=False,
            chaos=False, resilience=ResiliencePlane(),
        ).run(events)
        stats = report.stats
        assert stats.conserved()
        assert stats.failed == len(events)
        assert stats.answered == 0
        assert stats.resilience.failed_batches >= 1
        for result in report.results:
            assert result.failed and not result.shed
            assert result.decision is None
            assert result.lane == 0  # the batch did occupy a lane
        # the run terminated: the lane was freed despite the failure
        assert report.makespan_ms < 60.0

    def test_unprotected_loop_keeps_raising(
        self, untrained_classifier, monkeypatch
    ):
        """With chaos and resilience both off, the pre-resilience
        exception semantics hold: a raising flush propagates."""
        blocker = _blocker(untrained_classifier)

        def broken(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(blocker, "decide_many", broken)
        loop = ServeLoop(blocker, SETTINGS, chaos=False, resilience=False)
        with pytest.raises(RuntimeError, match="boom"):
            loop.run([
                ArrivalEvent(at_ms=0.0, session_id="s0",
                             bitmap=_frames(1)[0]),
            ])


class TestAsyncFrontExactlyOnce:
    def test_decide_failure_rejects_leader_and_riders_exactly_once(
        self, untrained_classifier, monkeypatch
    ):
        """Every awaiter of a failed batch — riders included — gets
        the exception exactly once, the pending map is clean, and a
        later duplicate submit is a fresh leader, not an orphan."""
        frames = _frames(2, seed=2)
        blocker = _blocker(untrained_classifier)
        front = AsyncServeFront(
            blocker, SETTINGS, cascade=False, differ=False, chaos=False,
        )
        real_decide = blocker.decide_many
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected decide failure")
            return real_decide(*args, **kwargs)

        monkeypatch.setattr(blocker, "decide_many", flaky)

        async def drive():
            outcomes = await asyncio.gather(
                front.submit(frames[0], session_id="a"),
                front.submit(frames[0], session_id="b"),  # rider
                front.submit(frames[1], session_id="a"),
                return_exceptions=True,
            )
            assert all(
                isinstance(outcome, RuntimeError) for outcome in outcomes
            )
            assert front._pending == {}
            assert front._waiters == {}
            # the key is free again: a retry computes normally
            retry = await front.submit(frames[0], session_id="a")
            await front.aclose()
            return retry

        retry = asyncio.run(drive())
        assert retry.probability == _blocker(
            untrained_classifier
        ).decide(frames[0]).probability
        stats = front.stats
        assert stats.failed == 3
        assert stats.coalesced == 1
        assert stats.conserved()

    def test_raising_remember_cannot_orphan_a_rider(
        self, untrained_classifier, monkeypatch
    ):
        """The satellite regression: differ.remember raising during
        settle must not strand any future — all waiters resolve with
        the decision, and the failure is absorbed and counted."""
        frames = _frames(1, seed=3)
        differ = FrameDiffer()

        def broken_remember(*args, **kwargs):
            raise RuntimeError("snapshot store exploded")

        monkeypatch.setattr(differ, "remember", broken_remember)
        from repro.cascade import FrameProvenance

        prov = FrameProvenance(
            url="https://site0.test/slot0/ad.png",
            page_domain="site0.test",
            tag="img",
            css_classes=("banner",),
            width=12,
            height=14,
        )
        front = AsyncServeFront(
            _blocker(untrained_classifier), SETTINGS,
            cascade=False, differ=differ, chaos=False,
        )

        async def drive():
            first, second = await asyncio.gather(
                front.submit(frames[0], session_id="a", provenance=prov,
                             content_key="ck-0"),
                front.submit(frames[0], session_id="b", provenance=prov,
                             content_key="ck-0"),  # rider
            )
            await front.aclose()
            return first, second

        first, second = asyncio.run(drive())
        assert first.probability == second.probability
        stats = front.stats
        assert stats.answered == 2
        assert stats.failed == 0
        assert stats.conserved()
        # both remember attempts (leader + rider) were absorbed
        assert stats.tier_errors == 2

    def test_chaos_front_survives_a_dying_settle_path(
        self, untrained_classifier, monkeypatch
    ):
        """Belt and braces: with a chaos cursor attached, a raising
        feedback write still cannot take the flush down or starve the
        deadline timer — later submits keep being answered."""
        frames = _frames(4, seed=4)
        differ = FrameDiffer()
        monkeypatch.setattr(
            differ, "remember",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("x")),
        )
        from repro.cascade import FrameProvenance

        front = AsyncServeFront(
            _blocker(untrained_classifier), SETTINGS,
            cascade=False, differ=differ, chaos=ChaosSchedule([]),
        )

        async def drive():
            decisions = []
            for index, frame in enumerate(frames):
                prov = FrameProvenance(
                    url=f"https://site0.test/slot{index}/ad.png",
                    page_domain="site0.test",
                    tag="img",
                    css_classes=("banner",),
                    width=12,
                    height=14,
                )
                decisions.append(await front.submit(
                    frame, session_id="s0", provenance=prov,
                    content_key=f"ck-{index}",
                ))
            await front.aclose()
            return decisions

        decisions = asyncio.run(drive())
        assert len(decisions) == len(frames)
        assert front.stats.answered == len(frames)
        assert front.stats.conserved()
        assert front.stats.tier_errors == len(frames)
