"""Shared fixtures.

The reference classifier is expensive to train (~90 s) but cached on
disk by the model store, so the session-scoped fixture is fast on every
run after the first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdClassifier, PercivalConfig, get_reference_classifier
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="session")
def reference_classifier() -> AdClassifier:
    """The shared trained classifier (trains once, cached on disk)."""
    return get_reference_classifier()


@pytest.fixture(scope="session")
def untrained_classifier() -> AdClassifier:
    """A fresh classifier for tests that only need the wiring."""
    return AdClassifier(PercivalConfig())


@pytest.fixture()
def rng() -> np.random.Generator:
    return spawn_rng(1234, "tests")
