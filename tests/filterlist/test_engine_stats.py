"""EngineStats accounting and reset_stats semantics."""

import pytest

from repro.filterlist.engine import EngineStats, FilterEngine


@pytest.fixture()
def engine():
    return FilterEngine.from_text("\n".join([
        "||ads.example^$third-party",
        "@@||ads.example^$domain=trusted.example",
        "##.ad-box",
    ]))


def test_stats_start_at_zero(engine):
    stats = engine.stats
    assert (
        stats.requests_checked,
        stats.requests_blocked,
        stats.elements_checked,
        stats.elements_hidden,
    ) == (0, 0, 0, 0)


def test_request_checks_and_blocks_accumulate(engine):
    engine.check_request("https://ads.example/x.png", "pub.example")
    engine.check_request("https://cdn.example/cat.jpg", "pub.example")
    # exception rule: checked but not blocked
    engine.check_request("https://ads.example/x.png", "trusted.example")
    assert engine.stats.requests_checked == 3
    assert engine.stats.requests_blocked == 1


def test_element_checks_and_hides_accumulate(engine):
    engine.should_hide_element("div", ("ad-box",), "", "pub.example")
    engine.should_hide_element("div", ("content",), "", "pub.example")
    assert engine.stats.elements_checked == 2
    assert engine.stats.elements_hidden == 1


def test_reset_stats_zeroes_without_touching_rules(engine):
    engine.check_request("https://ads.example/x.png", "pub.example")
    engine.should_hide_element("div", ("ad-box",), "", "pub.example")
    rules_before = (engine.num_network_rules, engine.num_hiding_rules)
    engine.reset_stats()
    assert engine.stats == EngineStats()
    assert (engine.num_network_rules, engine.num_hiding_rules) == rules_before
    # and the fresh ledger keeps counting
    engine.check_request("https://ads.example/x.png", "pub.example")
    assert engine.stats.requests_checked == 1
    assert engine.stats.requests_blocked == 1


def test_reset_replaces_the_stats_object(engine):
    stale = engine.stats
    engine.check_request("https://ads.example/x.png", "pub.example")
    engine.reset_stats()
    assert engine.stats is not stale
    assert stale.requests_checked == 1  # old ledger left intact
