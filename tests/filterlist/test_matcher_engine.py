"""Token index and filter-engine decision semantics."""

import pytest

from repro.filterlist.engine import FilterEngine
from repro.filterlist.matcher import TokenIndex, best_token, rule_tokens
from repro.filterlist.rules import parse_rule
from repro.filterlist.easylist import build_synthetic_easylist, default_easylist


class TestTokens:
    def test_tokens_split_on_wildcards(self):
        assert "ads" in rule_tokens("||ads.example^")
        assert "example" in rule_tokens("||ads.example^")

    def test_best_token_is_longest(self):
        assert best_token("||ads.doubleclick.example^") == "doubleclick"

    def test_no_token_for_pure_wildcards(self):
        assert best_token("^*^") == ""


class TestTokenIndex:
    def _rules(self, *lines):
        return [parse_rule(l) for l in lines]

    def test_candidates_include_matching_token(self):
        index = TokenIndex(self._rules("||ads.example^", "||other.net^"))
        candidates = index.candidates("https://ads.example/x.png")
        assert any(r.pattern == "||ads.example^" for r in candidates)

    def test_candidates_exclude_unrelated(self):
        index = TokenIndex(self._rules("||longadnetworkname.example^"))
        assert index.candidates("https://plain.example/cat.jpg") == []

    def test_tokenless_rules_always_candidates(self):
        index = TokenIndex(self._rules("^*^"))
        assert len(index.candidates("https://anything.example/")) == 1

    def test_len_counts_rules(self):
        index = TokenIndex(self._rules("||a1x.example^", "||b2y.example^"))
        assert len(index) == 2


class TestFilterEngine:
    @pytest.fixture()
    def engine(self):
        return FilterEngine.from_text("\n".join([
            "||ads.example^$third-party",
            "@@||ads.example^$domain=trusted.example",
            "/banner/*$image",
            "##.ad-box",
            "news.example###promo",
        ]))

    def test_blocks_third_party_ad(self, engine):
        decision = engine.check_request(
            "https://ads.example/x.png", "pub.example"
        )
        assert decision.blocked
        assert decision.rule is not None

    def test_first_party_not_blocked_by_third_party_rule(self, engine):
        decision = engine.check_request(
            "https://ads.example/x.png", "ads.example"
        )
        assert not decision.blocked

    def test_exception_overrides_block(self, engine):
        decision = engine.check_request(
            "https://ads.example/x.png", "trusted.example"
        )
        assert not decision.blocked
        assert decision.exception is not None

    def test_resource_type_respected(self, engine):
        blocked = engine.check_request(
            "https://x.example/banner/1.png", "pub.example", "image"
        )
        allowed = engine.check_request(
            "https://x.example/banner/1.js", "pub.example", "script"
        )
        assert blocked.blocked
        assert not allowed.blocked

    def test_element_hiding(self, engine):
        assert engine.should_hide_element(
            "div", ("ad-box",), "", "any.example"
        ) is not None
        assert engine.should_hide_element(
            "div", ("content",), "", "any.example"
        ) is None

    def test_domain_scoped_hiding(self, engine):
        assert engine.should_hide_element(
            "div", (), "promo", "news.example"
        ) is not None
        assert engine.should_hide_element(
            "div", (), "promo", "other.example"
        ) is None

    def test_stats_accumulate(self, engine):
        engine.reset_stats()
        engine.check_request("https://ads.example/a.png", "p.example")
        engine.check_request("https://fine.example/a.png", "p.example")
        assert engine.stats.requests_checked == 2
        assert engine.stats.requests_blocked == 1


class TestSyntheticEasyList:
    def test_builds_and_parses(self):
        engine = FilterEngine.from_text(build_synthetic_easylist())
        assert engine.num_network_rules > 100
        assert engine.num_hiding_rules > 5

    def test_default_easylist_cached(self):
        assert default_easylist() is default_easylist()

    def test_known_network_blocked(self):
        engine = default_easylist()
        decision = engine.check_request(
            "https://ads.doublevision.test/serve/c0001_aa.png",
            "news5.example",
        )
        assert decision.blocked

    def test_unknown_network_not_blocked(self):
        engine = default_easylist()
        decision = engine.check_request(
            "https://sponsorly.test/s/c0001_aa.png", "news5.example"
        )
        assert not decision.blocked

    def test_publisher_exception_applies(self):
        engine = default_easylist()
        decision = engine.check_request(
            "https://ads.doublevision.test/serve/x.png", "news1.example"
        )
        assert not decision.blocked

    def test_known_ad_class_hidden(self):
        engine = default_easylist()
        assert engine.should_hide_element(
            "div", ("ad-banner",), "", "blog2.example"
        ) is not None

    def test_obfuscated_class_not_hidden(self):
        engine = default_easylist()
        assert engine.should_hide_element(
            "div", ("x3fk2",), "", "blog2.example"
        ) is None
