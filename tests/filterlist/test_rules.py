"""ABP rule parsing and matching semantics."""

import pytest

from repro.filterlist.rules import (
    ElementHideRule,
    NetworkRule,
    RuleParseError,
    parse_filter_list,
    parse_rule,
)


class TestParseRule:
    def test_comment_returns_none(self):
        assert parse_rule("! a comment") is None
        assert parse_rule("[Adblock Plus 2.0]") is None
        assert parse_rule("   ") is None

    def test_network_rule_type(self):
        assert isinstance(parse_rule("||ads.example^"), NetworkRule)

    def test_elemhide_rule_type(self):
        assert isinstance(parse_rule("##.ad-banner"), ElementHideRule)

    def test_exception_flag(self):
        rule = parse_rule("@@||good.example^")
        assert rule.is_exception

    def test_unsupported_option_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule("||x.example^$bogus-option")

    def test_empty_pattern_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule("$image")


class TestDomainAnchor:
    def test_matches_domain_and_subdomains(self):
        rule = parse_rule("||ads.example^")
        assert rule.matches_url("https://ads.example/x.png")
        assert rule.matches_url("http://cdn.ads.example/x.png")

    def test_rejects_domain_suffix_lookalike(self):
        rule = parse_rule("||ads.example^")
        assert not rule.matches_url("https://notads.example/x.png")
        assert not rule.matches_url("https://ads.example.evil/x.png")

    def test_separator_matches_end_of_url(self):
        rule = parse_rule("||ads.example^")
        assert rule.matches_url("https://ads.example")


class TestPatternSyntax:
    def test_plain_substring(self):
        rule = parse_rule("/banner/")
        assert rule.matches_url("https://x.example/banner/1.png")
        assert not rule.matches_url("https://x.example/header/1.png")

    def test_wildcard(self):
        rule = parse_rule("/serve/*.png")
        assert rule.matches_url("https://a.example/serve/abc/x.png")
        assert not rule.matches_url("https://a.example/serve/abc/x.jpg")

    def test_start_anchor(self):
        rule = parse_rule("|https://exact.example/")
        assert rule.matches_url("https://exact.example/a")
        assert not rule.matches_url("http://other/https://exact.example/")

    def test_end_anchor(self):
        rule = parse_rule("/pixel.gif|")
        assert rule.matches_url("https://x.example/pixel.gif")
        assert not rule.matches_url("https://x.example/pixel.gif?u=1")

    def test_separator_character_class(self):
        rule = parse_rule("||x.example/ad^")
        assert rule.matches_url("https://x.example/ad/img.png")
        assert rule.matches_url("https://x.example/ad?q=1")
        assert not rule.matches_url("https://x.example/adjacent")


class TestOptions:
    def test_third_party_constraint(self):
        rule = parse_rule("||ads.example^$third-party")
        assert rule.applies_to("pub.example", third_party=True,
                               resource_type="image")
        assert not rule.applies_to("ads.example", third_party=False,
                                   resource_type="image")

    def test_first_party_constraint(self):
        rule = parse_rule("||self.example^$~third-party")
        assert rule.applies_to("self.example", third_party=False,
                               resource_type="image")
        assert not rule.applies_to("other.example", third_party=True,
                                   resource_type="image")

    def test_resource_type_constraint(self):
        rule = parse_rule("||ads.example^$image")
        assert rule.applies_to("p.example", True, "image")
        assert not rule.applies_to("p.example", True, "script")

    def test_domain_option(self):
        rule = parse_rule("||ads.example^$domain=news.example|~blog.news.example")
        assert rule.applies_to("news.example", True, "image")
        assert rule.applies_to("sub.news.example", True, "image")
        assert not rule.applies_to("blog.news.example", True, "image")
        assert not rule.applies_to("other.example", True, "image")


class TestElementHiding:
    def test_class_selector(self):
        rule = parse_rule("##.ad-banner")
        assert rule.matches_element("div", ("ad-banner",), "")
        assert rule.matches_element("img", ("x", "ad-banner"), "")
        assert not rule.matches_element("div", ("banner",), "")

    def test_id_selector(self):
        rule = parse_rule("###sidebar-ad")
        assert rule.matches_element("div", (), "sidebar-ad")
        assert not rule.matches_element("div", (), "sidebar")

    def test_tag_with_class(self):
        rule = parse_rule("##div.promo")
        assert rule.matches_element("div", ("promo",), "")
        assert not rule.matches_element("span", ("promo",), "")

    def test_domain_scoping(self):
        rule = parse_rule("news.example##.ad")
        assert rule.applies_to("news.example")
        assert rule.applies_to("sub.news.example")
        assert not rule.applies_to("other.example")

    def test_excluded_domain(self):
        rule = parse_rule("~news.example##.ad")
        assert not rule.applies_to("news.example")
        assert rule.applies_to("other.example")

    def test_empty_selector_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule("example.com##")

    def test_unsupported_selector_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule("##div > span.x")


class TestParseFilterList:
    def test_splits_rule_families(self):
        text = "\n".join([
            "! comment",
            "||ads.example^",
            "@@||ok.example^",
            "##.ad-box",
        ])
        network, hiding = parse_filter_list(text)
        assert len(network) == 2
        assert len(hiding) == 1

    def test_skip_errors_mode(self):
        text = "||good.example^\n||bad.example^$nope\n##.x"
        with pytest.raises(RuleParseError):
            parse_filter_list(text)
        network, hiding = parse_filter_list(text, skip_errors=True)
        assert len(network) == 1
        assert len(hiding) == 1
