#!/usr/bin/env python
"""The adversarial arms race (§6 Limitations) with real gradients.

An advertiser with white-box access perturbs creatives with PGD until
the classifier stops flagging them; the blocker retrains on adversarial
examples (the client-side-retraining mitigation the paper sketches) and
recovers much of its recall.

Usage::

    python examples/adversarial_arms_race.py
"""

from __future__ import annotations

from repro import get_reference_classifier
from repro.core.adversarial import (
    adversarial_finetune,
    clone_classifier,
    evasion_rate,
)
from repro.core.preprocessing import preprocess_batch
from repro.data.corpus import CorpusConfig, build_training_corpus
from repro.synth.adgen import generate_ad, random_ad_spec
from repro.utils.rng import spawn_rng


def main() -> None:
    reference = get_reference_classifier()
    defended = clone_classifier(reference)

    rng = spawn_rng(12, "arms-race")
    bitmaps = [generate_ad(rng, random_ad_spec(rng)) for _ in range(50)]
    ads = preprocess_batch(bitmaps, reference.config.input_size)

    print("attacking the published model (PGD, logit-margin):")
    print(f"{'epsilon':>8} {'recall (clean)':>15} "
          f"{'recall (attacked)':>18} {'evasion':>8}")
    for eps in (0.05, 0.15, 0.3):
        report = evasion_rate(defended, ads, eps, steps=10)
        print(f"{eps:>8.2f} {report.clean_recall:>15.3f} "
              f"{report.perturbed_recall:>18.3f} "
              f"{report.evasion_rate:>8.3f}")

    print("\nretraining with adversarial examples (2 rounds)...")
    corpus = build_training_corpus(CorpusConfig(
        seed=12, num_ads=200, num_nonads=200,
        input_size=reference.config.input_size,
    ))
    adversarial_finetune(
        defended, corpus.images, corpus.labels, epsilon=0.3, epochs=2,
    )

    print("\nre-attacking the defended model:")
    for eps in (0.05, 0.15, 0.3):
        report = evasion_rate(defended, ads, eps, steps=10)
        print(f"{eps:>8.2f} {report.clean_recall:>15.3f} "
              f"{report.perturbed_recall:>18.3f} "
              f"{report.evasion_rate:>8.3f}")


if __name__ == "__main__":
    main()
