#!/usr/bin/env python
"""Grad-CAM salience maps (§5.6, Figure 4), rendered as ASCII art.

Shows which regions of an image drive the ad/non-ad decision.  On an
overt ad the salience concentrates on cue regions (disclosure marker,
CTA button, text); on a photo it stays diffuse.

Usage::

    python examples/salience_maps.py
"""

from __future__ import annotations

import numpy as np

from repro import GradCam, get_reference_classifier
from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import spawn_rng

_SHADES = " .:-=+*#%@"


def ascii_map(cam: np.ndarray, width: int = 48) -> str:
    """Downsample a salience map to terminal-sized ASCII art."""
    height = max(int(cam.shape[0] / cam.shape[1] * width / 2), 4)
    rows = []
    for y in np.linspace(0, cam.shape[0] - 1, height).astype(int):
        row = "".join(
            _SHADES[int(cam[y, x] * (len(_SHADES) - 1))]
            for x in np.linspace(0, cam.shape[1] - 1, width).astype(int)
        )
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    classifier = get_reference_classifier()
    gradcam = GradCam(classifier)
    layers = gradcam.available_layers()
    mid_layer = layers[len(layers) // 2]
    rng = spawn_rng(3, "salience-demo")

    ad = generate_ad(rng, AdSpec(slot_format="medium_rectangle",
                                 cue_strength=1.0))
    photo = generate_content(rng, kind=ContentKind.PHOTO)

    print(f"P(ad | banner) = {classifier.ad_probability(ad):.3f}")
    print(f"salience (mid-network layer {mid_layer}) — banner ad, "
          "marker in top-right:")
    print(ascii_map(gradcam.salience(ad, layer=mid_layer)))
    print()
    print(f"P(ad | photo) = {classifier.ad_probability(photo):.3f}")
    print("salience — photo (expected diffuse):")
    print(ascii_map(gradcam.salience(photo, layer=mid_layer)))


if __name__ == "__main__":
    main()
