#!/usr/bin/env python
"""Generating EasyList supplements from PERCIVAL verdicts (§6).

Crawls part of the synthetic web with the model, emits ABP rules for
the ad resources EasyList misses (unknown networks become domain rules,
first-party promos become path rules), and measures the recall gain on
an unseen crawl.

Usage::

    python examples/blocklist_generation.py
"""

from __future__ import annotations

from repro import default_easylist, get_reference_classifier
from repro.crawl.listgen import evaluate_list_generation
from repro.synth.webgen import SyntheticWeb, WebConfig


def main() -> None:
    classifier = get_reference_classifier()
    engine = default_easylist()

    train_web = SyntheticWeb(WebConfig(seed=61, num_sites=12))
    eval_web = SyntheticWeb(WebConfig(seed=62, num_sites=8))
    train_pages = list(train_web.iter_pages(train_web.top_sites(12), 2))
    eval_pages = list(eval_web.iter_pages(eval_web.top_sites(8), 2))

    report = evaluate_list_generation(
        classifier, engine, train_pages, eval_pages,
    )
    print(report.to_table())
    print("\ngenerated rules (first 12):")
    for rule in report.generated.rules[:12]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
