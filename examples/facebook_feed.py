#!/usr/bin/env python
"""First-party ad blocking on a Facebook-style feed (§5.3).

Replays browsing sessions over the synthetic feed and shows PERCIVAL
blocking right-column ads and sponsored-in-feed posts — the content
filter lists cannot reach because Facebook serves it first-party with
obfuscated markup.

Usage::

    python examples/facebook_feed.py [--days 7]
"""

from __future__ import annotations

import argparse

from repro import PercivalBlocker, get_reference_classifier
from repro.eval.metrics import confusion_metrics
from repro.synth.facebook import FacebookFeed, FeedConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=7)
    args = parser.parse_args()

    classifier = get_reference_classifier()
    blocker = PercivalBlocker(classifier)
    feed = FacebookFeed(FeedConfig(seed=0))

    predictions, truths = [], []
    per_kind = {}
    for day, session in enumerate(feed.browse(args.days)):
        day_blocked = 0
        for item in session:
            verdict = blocker.decide(item.render()).is_ad
            predictions.append(verdict)
            truths.append(item.is_ad)
            day_blocked += verdict
            stats = per_kind.setdefault(item.kind, [0, 0])
            stats[0] += verdict
            stats[1] += 1
        print(f"day {day:2d}: {len(session)} items, "
              f"{day_blocked} blocked")

    metrics = confusion_metrics(predictions, truths)
    print(f"\n{args.days} days of browsing: {metrics}")
    print("(paper over 35 days: accuracy 92.0%, precision 0.784, "
          "recall 0.7)\n")
    print("blocked / shown by feed-item kind:")
    for kind, (blocked, total) in sorted(per_kind.items()):
        print(f"  {kind:18s} {blocked:4d} / {total:4d}")


if __name__ == "__main__":
    main()
