#!/usr/bin/env python
"""Language-agnostic blocking (§5.5, Figure 9).

The English-trained model classifies ads crawled from regional webs in
five other languages.  Latin-script languages stay near the training
distribution; Arabic, Chinese and Korean drift further and degrade —
the paper's headline ordering.

Usage::

    python examples/multilingual.py
"""

from __future__ import annotations

from repro import get_reference_classifier
from repro.eval.experiments.languages import run_languages_experiment


def main() -> None:
    classifier = get_reference_classifier()
    result = run_languages_experiment(
        classifier=classifier, sites_per_language=10, pages_per_site=2,
    )
    print(result.to_table())
    print("\nTakeaway: the model was trained on English creatives only;"
          "\nthe accuracy ordering (Latin > Arabic > CJK/Hangul) falls"
          "\nout of the visual distribution shift, exactly as in the"
          "\npaper.")


if __name__ == "__main__":
    main()
