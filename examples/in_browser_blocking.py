#!/usr/bin/env python
"""In-browser blocking: render synthetic pages through the Blink-shaped
pipeline with PERCIVAL at the decode/raster choke point.

Reproduces the paper's deployment story end to end: pages are fetched,
parsed to a DOM, laid out, and rasterized on parallel worker lanes;
every decoded image passes through the classifier before it can paint,
and frames classified as ads have their buffers cleared.

Usage::

    python examples/in_browser_blocking.py [--pages 10] [--brave]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import BRAVE, CHROMIUM, PercivalBlocker, Renderer
from repro import SyntheticWeb, WebConfig, get_reference_classifier
from repro.browser.network import MockNetwork, NetworkConfig
from repro.synth.webgen import url_registry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pages", type=int, default=10)
    parser.add_argument("--brave", action="store_true",
                        help="run with Brave shields (filter lists) on")
    parser.add_argument("--mode", choices=("sync", "async"),
                        default="sync")
    args = parser.parse_args()

    classifier = get_reference_classifier()
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=11.0)

    web = SyntheticWeb(WebConfig(seed=123, num_sites=args.pages))
    pages = [web.build_page(site) for site in web.top_sites(args.pages)]
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=1))
    profile = BRAVE if args.brave else CHROMIUM
    renderer = Renderer(profile, network)

    print(f"profile={profile.name} mode={args.mode} "
          f"pages={len(pages)}\n")
    print(f"{'page':42s} {'imgs':>4} {'list':>5} {'cnn':>4} "
          f"{'ads':>4} {'render ms':>10}")
    print("-" * 76)

    base_times, treat_times = [], []
    for page in pages:
        truth_ads = len(page.ad_elements())
        baseline = renderer.render(page)
        treated = renderer.render(page, percival=blocker,
                                  mode=args.mode)
        base_times.append(baseline.render_time_ms)
        treat_times.append(treated.render_time_ms)
        print(f"{page.url:42s} {treated.images_total:>4} "
              f"{treated.images_blocked_by_list:>5} "
              f"{treated.images_blocked_by_percival:>4} "
              f"{truth_ads:>4} {treated.render_time_ms:>10.0f}")

    base_median = float(np.median(base_times))
    treat_median = float(np.median(treat_times))
    overhead = treat_median - base_median
    print("-" * 76)
    print(f"median render: baseline {base_median:.0f} ms, "
          f"with PERCIVAL {treat_median:.0f} ms "
          f"(+{overhead:.0f} ms, "
          f"{100 * overhead / base_median:.2f}%)")
    print("(paper: +178.23 ms / 4.55% on Chromium, "
          "+281.85 ms / 19.07% on Brave)")


if __name__ == "__main__":
    main()
