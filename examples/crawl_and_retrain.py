#!/usr/bin/env python
"""The crawl/retrain flywheel (§4.4.2, Figure 5) at laptop scale.

Runs the paper's phased methodology: each phase crawls a fresh slice of
the synthetic web by reading decoded frames out of the render pipeline,
buckets them with the current model, dedups, rebalances, and retrains.
Holdout accuracy is reported per phase.

Usage::

    python examples/crawl_and_retrain.py [--phases 4]
"""

from __future__ import annotations

import argparse

from repro.core.config import PercivalConfig
from repro.crawl.phases import run_crawl_phases


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phases", type=int, default=4)
    parser.add_argument("--sites-per-phase", type=int, default=5)
    args = parser.parse_args()

    print(f"running {args.phases} crawl/retrain phases "
          "(paper: 8 phases over 4 months)\n")
    result = run_crawl_phases(
        num_phases=args.phases,
        sites_per_phase=args.sites_per_phase,
        pages_per_site=2,
        epochs_per_phase=8,
        seed=0,
        config=PercivalConfig(
            input_size=16, epochs=8,
            num_train_ads=100, num_train_nonads=100,
        ),
    )

    print(f"{'phase':>5} {'captured':>9} {'kept':>6} {'corpus':>7} "
          f"{'bucket-agree':>12} {'holdout acc':>12}")
    print("-" * 58)
    for phase in result.phases:
        print(f"{phase.phase:>5} {phase.frames_captured:>9} "
              f"{phase.unique_kept:>6} {phase.corpus_size:>7} "
              f"{phase.bucket_agreement:>12.3f} "
              f"{phase.holdout_accuracy:>12.3f}")
    print("\naccuracy curve:",
          " -> ".join(f"{a:.3f}" for a in result.accuracy_curve))


if __name__ == "__main__":
    main()
