#!/usr/bin/env python
"""Quickstart: train (or load) PERCIVAL and classify a few images.

Usage::

    python examples/quickstart.py

The first run trains the reduced-scale model (~1-2 minutes) and caches
the weights under ``.cache/models``; later runs load instantly.
"""

from __future__ import annotations

from repro import PercivalBlocker, get_reference_classifier
from repro.synth.adgen import AdSpec, generate_ad
from repro.synth.contentgen import ContentKind, generate_content
from repro.utils.rng import spawn_rng


def main() -> None:
    print("Loading the reference PERCIVAL classifier (trains on first "
          "run)...")
    classifier = get_reference_classifier(verbose=True)
    print(f"model size: {classifier.model_size_mb:.3f} MB "
          "(paper ships < 2 MB at full scale)")
    print("per-image latency: "
          f"{classifier.measured_latency_ms():.2f} ms\n")

    blocker = PercivalBlocker(classifier)
    rng = spawn_rng(0, "quickstart")

    samples = [
        ("banner ad (overt)",
         generate_ad(rng, AdSpec(slot_format="leaderboard",
                                 cue_strength=0.95))),
        ("native-style ad (subtle)",
         generate_ad(rng, AdSpec(slot_format="medium_rectangle",
                                 cue_strength=0.15))),
        ("news photo",
         generate_content(rng, kind=ContentKind.PHOTO)),
        ("user avatar",
         generate_content(rng, kind=ContentKind.AVATAR)),
        ("brand product shot",
         generate_content(rng, kind=ContentKind.PRODUCT_SHOT,
                          ad_intent=0.6)),
    ]

    print(f"{'image':30s} {'P(ad)':>8s}  verdict")
    print("-" * 52)
    for name, bitmap in samples:
        decision = blocker.decide(bitmap)
        verdict = "BLOCK" if decision.is_ad else "render"
        print(f"{name:30s} {decision.probability:8.3f}  {verdict}")

    print("\nRepeating the first image (memoized verdict):")
    decision = blocker.decide(samples[0][1])
    print(f"from_cache={decision.from_cache} "
          f"(cache size={blocker.memo_size})")


if __name__ == "__main__":
    main()
