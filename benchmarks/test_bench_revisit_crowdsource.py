"""§6 extensions: revisit collapse and crowd-sourced aggregation.

Two deployment refinements the paper sketches in its Discussion:

* remembering blocked elements and collapsing them pre-layout on the
  next visit (the dangling-slot fix), measured as the second-visit
  savings in decode/classification work,
* crowd-sourcing flagged hosts from many users with a consensus
  threshold before promoting shared rules.
"""

import numpy as np

from repro.browser.network import MockNetwork, NetworkConfig
from repro.browser.renderer import CHROMIUM, Renderer
from repro.core import PercivalBlocker
from repro.core.revisit import RevisitMemory
from repro.crawl.crowdsource import run_crowdsource_simulation
from repro.eval.reporting import paper_vs_measured
from repro.filterlist.easylist import default_easylist
from repro.synth.webgen import SyntheticWeb, WebConfig, url_registry


def _revisit_run(reference_classifier):
    web = SyntheticWeb(WebConfig(seed=812, num_sites=12,
                                 images_per_page=(12, 30)))
    pages = [web.build_page(s) for s in web.top_sites(12)]
    network = MockNetwork(url_registry(pages), NetworkConfig(seed=4))
    renderer = Renderer(CHROMIUM, network)
    blocker = PercivalBlocker(reference_classifier,
                              calibrated_latency_ms=11.0)
    memory = RevisitMemory()

    first = [
        renderer.render(p, percival=blocker, mode="sync",
                        revisit_memory=memory)
        for p in pages
    ]
    second = [
        renderer.render(p, percival=blocker, mode="sync",
                        revisit_memory=memory)
        for p in pages
    ]
    return first, second


def test_revisit_collapse(benchmark, reference_classifier, report_table):
    first, second = benchmark.pedantic(
        _revisit_run, args=(reference_classifier,), rounds=1,
        iterations=1,
    )
    blocked_first = sum(m.images_blocked_by_percival for m in first)
    collapsed_second = sum(
        m.elements_collapsed_by_memory for m in second
    )
    classify_first = sum(m.classify_cost_ms for m in first)
    classify_second = sum(m.classify_cost_ms for m in second)
    render_first = float(np.median([m.render_time_ms for m in first]))
    render_second = float(np.median([m.render_time_ms for m in second]))

    report_table(paper_vs_measured(
        "§6 fix: revisit collapse (second visit vs first)",
        [
            ("frames blocked in-raster (visit 1)", "-", blocked_first),
            ("slots collapsed pre-layout (visit 2)", "all remembered",
             collapsed_second),
            ("classification cost, visit 1 (ms)", "-", classify_first),
            ("classification cost, visit 2 (ms)", "lower",
             classify_second),
            ("median render, visit 1 (ms)", "-", render_first),
            ("median render, visit 2 (ms)", "lower", render_second),
        ],
    ))
    # every remembered creative collapses pre-layout on visit 2 (shared
    # campaign creatives collapse at each occurrence, so counts can
    # exceed the unique frames blocked in-raster on visit 1)...
    assert collapsed_second >= blocked_first
    # ...leaving nothing for the raster-path blocker to do again
    assert sum(m.images_blocked_by_percival for m in second) == 0
    assert classify_second < classify_first
    assert render_second < render_first


def test_crowdsourced_rules(benchmark, reference_classifier,
                            report_table):
    result = benchmark.pedantic(
        run_crowdsource_simulation,
        args=(reference_classifier, default_easylist()),
        kwargs={"num_users": 8, "min_reporters": 3},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["promoted"] = len(result.promoted_rules)
    assert result.promoted_rules  # consensus reached on real offenders
    promoted = " ".join(result.promoted_rules)
    # only uncovered third-party networks get promoted
    assert "sponsorly.test" in promoted or "freshads.test" in promoted
    assert ".example^" not in promoted  # no publisher domains
