"""§4.2 ablation: model compression trade-off.

Paper narrative: big nets (Inception/ResNet class) hit 97-99% but are
prohibitively large/slow; the pruned SqueezeNet fork keeps accuracy at
a fraction of the size; degenerate models are fast but inaccurate.
"""

from repro.eval.experiments.compression import run_compression_ablation


def test_compression_tradeoff(benchmark, report_table):
    result = benchmark.pedantic(
        run_compression_ablation, rounds=1, iterations=1,
    )
    report_table(result.to_table())
    by_name = {v.name: v for v in result.variants}
    fork = by_name["percival (paper fork)"]
    wide = by_name["wider fork (0.5x width)"]
    for variant in result.variants:
        benchmark.extra_info[variant.name] = variant.accuracy

    # the paper's compression claims: the pruned fork is a fraction of
    # the wider model's size and latency...
    assert fork.size_mb < wide.size_mb / 2
    assert fork.latency_ms < wide.latency_ms
    # ...without a significant accuracy loss (§4.2: "without a
    # significant loss in accuracy")
    assert fork.accuracy > wide.accuracy - 0.05
    assert fork.accuracy > 0.9
    # note: the linear baseline is competitive on this *synthetic*
    # distribution (documented in EXPERIMENTS.md); real web imagery is
    # not linearly separable, so no assertion pits CNN against linear.
