"""Figures 10-12: first-party Facebook ad blocking.

Paper: 35 days of browsing — 354 ads / 1,830 non-ads, accuracy 92.0%,
precision 0.784, recall 0.7; right-column ads always caught; in-feed
sponsored posts drive FNs; brand-page content drives FPs.
"""

from repro.eval.experiments.facebook import run_facebook_experiment


def test_facebook(benchmark, reference_classifier, report_table):
    result = benchmark.pedantic(
        run_facebook_experiment,
        kwargs={"classifier": reference_classifier, "days": 35},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    metrics = result.metrics
    benchmark.extra_info["accuracy"] = metrics.accuracy
    benchmark.extra_info["precision"] = metrics.precision
    benchmark.extra_info["recall"] = metrics.recall

    # the paper's qualitative findings (§5.3, Figures 11/12)
    assert result.per_kind_recall["right_column_ad"] > 0.95
    assert (result.per_kind_recall["sponsored_post"]
            < result.per_kind_recall["right_column_ad"])
    assert (result.per_kind_fp_rate["brand_post"]
            > result.per_kind_fp_rate["organic"])
    # headline band: accuracy ~92%, precision and recall well below the
    # EasyList-replication numbers
    assert 0.87 < metrics.accuracy < 0.97
    assert metrics.recall < 0.9
    assert metrics.precision < 0.95
