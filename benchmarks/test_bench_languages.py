"""Figure 9: language-agnostic detection.

Paper accuracies: Spanish 95.1 > French 93.9 > Arabic 81.3 >
Chinese 80.4 > Korean 76.9 — Latin-script languages near the training
distribution, CJK/Hangul furthest.
"""

from repro.eval.experiments.languages import run_languages_experiment
from repro.synth.languages import Language


def test_languages(benchmark, reference_classifier, report_table):
    result = benchmark.pedantic(
        run_languages_experiment,
        kwargs={
            "classifier": reference_classifier,
            "sites_per_language": 12,
            "pages_per_site": 2,
        },
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    accuracy = result.accuracy_by_language()
    for language, value in accuracy.items():
        benchmark.extra_info[language.value] = value

    # the paper's ordering: Latin >> Arabic/Chinese > Korean
    assert accuracy[Language.SPANISH] > accuracy[Language.ARABIC]
    assert accuracy[Language.FRENCH] > accuracy[Language.CHINESE]
    assert accuracy[Language.SPANISH] > accuracy[Language.KOREAN]
    assert accuracy[Language.KOREAN] < accuracy[Language.ARABIC]
    # Latin-script accuracy stays in the paper's 90+% band
    assert accuracy[Language.SPANISH] > 0.9
    assert accuracy[Language.FRENCH] > 0.9
    # CJK/Hangul degrade into the 70-90% band
    assert accuracy[Language.KOREAN] < 0.9
