"""Figure 3 / §2.3: model size and per-image inference latency.

Paper: < 2 MB model (74x smaller than Sentinel-class), ~11 ms/image.
"""

import numpy as np

from repro.eval.experiments.model_profile import (
    run_model_profile_experiment,
)


def test_model_size_and_latency(benchmark, report_table):
    result = benchmark.pedantic(
        run_model_profile_experiment, rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["percival_mb"] = result.percival_mb
    benchmark.extra_info["latency_ms"] = result.full_size_latency_ms
    assert result.percival_mb < 2.0
    assert result.sentinel_reduction > 50


def test_single_image_inference_latency(benchmark, reference_classifier):
    """Raw per-image classification latency of the deployed (reduced)
    model, preprocessing included — the §5.7 calibration input."""
    rng = np.random.default_rng(0)
    bitmap = rng.random((64, 64, 4)).astype(np.float32)
    reference_classifier.is_ad(bitmap)  # warm
    verdict = benchmark(lambda: reference_classifier.is_ad(bitmap))
    assert verdict in (True, False)
