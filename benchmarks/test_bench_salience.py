"""Figure 4: Grad-CAM salience maps.

Paper (qualitative): the network focuses on ad cues — the AdChoices
marker when present, text outlines, product shapes — and is diffuse on
non-ad photos.  Reproduced quantitatively via corner-mass ratio and
salience entropy.
"""

from repro.eval.experiments.salience import run_salience_experiment


def test_salience_concentrates_on_cues(benchmark, reference_classifier,
                                       report_table):
    result = benchmark.pedantic(
        run_salience_experiment,
        kwargs={"classifier": reference_classifier, "samples": 16},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["marker_mass_ratio"] = result.marker_mass_ratio
    assert result.marker_mass_ratio > 1.0
    assert result.ad_entropy < result.nonad_entropy
