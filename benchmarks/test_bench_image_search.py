"""Figure 13: blocking Google Image Search results.

Paper (blocked / first 100): Advertisement 96, Detergent 85, iPhone 76,
Shoes 56, Coffee 23, Pastry 14, Obama 12.
"""

from repro.eval.experiments.image_search import (
    run_image_search_experiment,
)


def test_image_search(benchmark, reference_classifier, report_table):
    result = benchmark.pedantic(
        run_image_search_experiment,
        kwargs={"classifier": reference_classifier, "per_query": 100},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    blocked = result.blocked_by_query()
    for query, count in blocked.items():
        benchmark.extra_info[query] = count

    # the paper's block-rate ordering across ad-intent levels
    assert blocked["Advertisement"] > blocked["Detergent"]
    assert blocked["Detergent"] >= blocked["iPhone"] - 8
    assert blocked["iPhone"] > blocked["Shoes"]
    assert blocked["Shoes"] > blocked["Coffee"]
    assert blocked["Coffee"] >= blocked["Pastry"] - 5
    assert blocked["Obama"] < 25
    assert blocked["Advertisement"] > 85
