"""§6 deployment: generating block-list supplements from PERCIVAL.

Paper: "PERCIVAL can be used to build and enhance block lists" —
crawl with the model, emit rules for ad resources EasyList misses,
measure the recall gain on an unseen crawl.
"""

from repro.crawl.listgen import evaluate_list_generation
from repro.filterlist.easylist import default_easylist
from repro.synth.webgen import SyntheticWeb, WebConfig


def test_blocklist_generation(benchmark, reference_classifier,
                              report_table):
    train_web = SyntheticWeb(WebConfig(seed=701, num_sites=14))
    eval_web = SyntheticWeb(WebConfig(seed=702, num_sites=10))
    train_pages = list(
        train_web.iter_pages(train_web.top_sites(14), 2)
    )
    eval_pages = list(eval_web.iter_pages(eval_web.top_sites(10), 2))

    result = benchmark.pedantic(
        evaluate_list_generation,
        args=(reference_classifier, default_easylist(),
              train_pages, eval_pages),
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["easylist_recall"] = result.easylist_recall
    benchmark.extra_info["combined_recall"] = result.combined_recall

    # generated rules close part of the list's coverage gap...
    assert result.combined_recall > result.easylist_recall + 0.03
    # ...without blocking legitimate content
    assert result.false_block_rate < 0.03
