"""Figures 14 & 15: render-time distribution and median overhead.

Paper: +178.23 ms (4.55%) median render-time in Chromium,
+281.85 ms (19.07%) in Brave; Figure 14 is the four-way CDF.

Substitution note: times are virtual-clock milliseconds with the
per-image classification cost calibrated to the paper's measured 11 ms
(see DESIGN.md §2); the preserved quantity is the *relative* overhead
structure — in particular Brave's %-overhead exceeding Chromium's
because list-blocking makes Brave's baseline far cheaper.
"""


from repro.eval.experiments.render_performance import (
    run_render_performance_experiment,
)

_RESULT_CACHE = {}


def _run(reference_classifier):
    if "result" not in _RESULT_CACHE:
        _RESULT_CACHE["result"] = run_render_performance_experiment(
            classifier=reference_classifier, num_pages=120,
        )
    return _RESULT_CACHE["result"]


def test_render_overhead_medians(benchmark, reference_classifier,
                                 report_table):
    result = benchmark.pedantic(
        _run, args=(reference_classifier,), rounds=1, iterations=1,
    )
    report_table(result.to_table())
    chromium_ms, chromium_pct = result.overhead(
        "chromium", "chromium+percival"
    )
    brave_ms, brave_pct = result.overhead("brave", "brave+percival")
    benchmark.extra_info.update({
        "chromium_overhead_ms": chromium_ms,
        "chromium_overhead_pct": chromium_pct,
        "brave_overhead_ms": brave_ms,
        "brave_overhead_pct": brave_pct,
    })

    # Figure 15 shape
    assert chromium_ms > 50                     # non-negligible
    assert 1.0 < chromium_pct < 10.0            # "minor" (paper: 4.55)
    assert brave_pct > chromium_pct             # the Brave asymmetry
    assert (result.series["brave"].median_ms
            < result.series["chromium"].median_ms)


def test_render_cdf_series(benchmark, reference_classifier,
                           report_table):
    """Figure 14: the four CDF series (printed as percentile rows)."""
    result = benchmark.pedantic(
        _run, args=(reference_classifier,), rounds=1, iterations=1,
    )
    lines = ["== Figure 14: render-time CDF (virtual ms) =="]
    header = f"{'percentile':>10} " + " ".join(
        f"{name:>20}" for name in result.series
    )
    lines.append(header)
    for q in (10, 25, 50, 75, 90, 99):
        row = f"{q:>9}% " + " ".join(
            f"{series.percentile(q):>20.0f}"
            for series in result.series.values()
        )
        lines.append(row)
    report_table("\n".join(lines))

    for series in result.series.values():
        values = [t for t, _ in series.cdf()]
        assert values == sorted(values)
    # every page renders faster under Brave than Chromium at p50/p90
    for q in (50, 90):
        assert (result.series["brave"].percentile(q)
                < result.series["chromium"].percentile(q))
