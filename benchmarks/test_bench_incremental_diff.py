"""Incremental re-classification via frame diffing (the PERCIVAL_DIFF
layer) on the two interaction-heavy scenarios.

The tentpole claim: with the per-session snapshot/diff layer in front
of the serve pipeline, a feed scroll or a page revisit costs O(delta)
classification work instead of O(page) — >= 3x fewer frames reach the
fingerprint/memo/queue pipeline per interaction after the first visit,
while **every** P(ad) and every final verdict stays bit-identical to
the ``PERCIVAL_DIFF=off`` path (the diff tier only changes *where*
answers come from, never what they are).

Two scenarios:

* **facebook feed scroll** — a session scrolls a synthetic feed
  (``repro.synth.facebook``) in a sliding window: each interaction
  re-rasters the whole window but only ``stride`` new items entered it,
* **page revisits** — the ``TrafficSpec`` revisit generator replays
  each session's page ``revisits`` times with creative churn: only the
  churned slots carry new content.

Marked ``bench_smoke``: the ratios are virtual-time/counter based, so
one deterministic replay per side is exact on any machine.
"""

import numpy as np
import pytest

from repro.cascade import FrameProvenance
from repro.core import AdClassifier, PercivalBlocker, PercivalConfig, ServeSettings
from repro.diff import FrameDiffer
from repro.eval.reporting import paper_vs_measured
from repro.serve import ArrivalEvent, ServeLoop, TrafficSpec, synthesize_traffic
from repro.synth.facebook import FacebookFeed, FeedConfig

#: one serve lane, deep queue: nothing sheds, so both sides answer
#: every request and the verdict sets compare one-for-one
SETTINGS = ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=1024, lanes=1)

#: feed scroll: a 12-item viewport sliding by 2 items per interaction —
#: 10/12 of every post-first raster pass is unchanged content
FEED_WINDOW = 12
FEED_STRIDE = 2
FEED_INTERACTIONS = 10

#: revisits: each session's page replayed 3 more times with 15% of the
#: slots rotating to a fresh creative per epoch
REVISIT_SPEC = TrafficSpec(
    sessions=8,
    frames_per_session=10,
    duplicate_fraction=0.2,
    provenance=True,
    sites=3,
    revisits=3,
    revisit_churn=0.15,
    seed=77,
)


def _blocker():
    return PercivalBlocker(
        AdClassifier(PercivalConfig(calibrated_latency_ms=1.0)),
        calibrated_latency_ms=1.0,
    )


def _feed_scroll_traffic():
    """The feed scenario as an arrival trace: interaction ``i`` shows
    items ``[i*stride, i*stride + window)``; every visible item arrives
    as one frame with its slot URL and pre-decode content key."""
    feed = FacebookFeed(FeedConfig(seed=5))
    items = feed.session(day=0)
    needed = FEED_WINDOW + FEED_STRIDE * (FEED_INTERACTIONS - 1)
    assert len(items) >= needed
    bitmaps = [items[i].render().astype(np.float32) for i in range(needed)]
    events = []
    for interaction in range(FEED_INTERACTIONS):
        start = interaction * FEED_STRIDE
        at_ms = interaction * 100.0
        for slot, index in enumerate(range(start, start + FEED_WINDOW)):
            bitmap = bitmaps[index]
            events.append(ArrivalEvent(
                at_ms=at_ms + slot * 0.25,
                session_id="feed-session",
                bitmap=bitmap,
                provenance=FrameProvenance(
                    url=f"https://feed.social.example/item/{index:03d}",
                    page_domain="feed.social.example",
                    width=bitmap.shape[1],
                    height=bitmap.shape[0],
                ),
                content_key=f"feed-item-{index:03d}",
            ))
    return events


def _run(traffic, differ):
    # cascade pinned off: rule hits carry compiled probabilities, which
    # would make the off/on comparison depend on rule compile timing
    report = ServeLoop(
        _blocker(), SETTINGS, cascade=False, differ=differ
    ).run(traffic)
    assert report.stats.conserved()
    assert report.stats.shed == 0
    assert report.stats.failed == 0
    return report


def _verdicts(report):
    return {
        r.request_id: (r.decision.is_ad, r.decision.probability)
        for r in report.results
    }


def _classified_after_first(report, first_visit_end_ms):
    """Frames that entered the fingerprint/memo/queue pipeline after
    the first visit — everything the diff tier did not answer."""
    return sum(
        1
        for r in report.results
        if r.arrival_ms > first_visit_end_ms and not r.diff_hit
    )


@pytest.mark.bench_smoke
def test_incremental_diff_classified_frames(report_table, bench_record):
    # --- scenario 1: facebook feed scroll -----------------------------
    feed_traffic = _feed_scroll_traffic()
    feed_off = _run(feed_traffic, differ=False)
    feed_on = _run(feed_traffic, differ=FrameDiffer())
    assert _verdicts(feed_off) == _verdicts(feed_on)  # bit-identical
    assert feed_off.stats.diff_hits == 0

    feed_interactions = FEED_INTERACTIONS - 1  # after the first visit
    feed_boundary = 50.0  # between interaction 0 and 1
    feed_class_off = _classified_after_first(feed_off, feed_boundary)
    feed_class_on = _classified_after_first(feed_on, feed_boundary)
    assert feed_class_off == feed_interactions * FEED_WINDOW
    feed_off_rate = feed_class_off / feed_interactions
    feed_on_rate = feed_class_on / feed_interactions
    feed_speedup = feed_class_off / max(feed_class_on, 1)

    # --- scenario 2: page revisits with creative churn ----------------
    revisit_traffic = synthesize_traffic(REVISIT_SPEC)
    revisit_off = _run(revisit_traffic, differ=False)
    differ = FrameDiffer()
    revisit_on = _run(revisit_traffic, differ=differ)
    assert _verdicts(revisit_off) == _verdicts(revisit_on)

    base_events = len(revisit_traffic) // (1 + REVISIT_SPEC.revisits)
    revisit_events = len(revisit_traffic) - base_events
    epochs = REVISIT_SPEC.revisits
    revisit_class_on = revisit_events - revisit_on.stats.diff_hits
    revisit_off_rate = revisit_events / epochs
    revisit_on_rate = revisit_class_on / epochs
    revisit_speedup = revisit_events / max(revisit_class_on, 1)

    rows = [
        ("feed: frames/interaction, diff off", "-", feed_off_rate),
        ("feed: frames/interaction, diff on", "-", feed_on_rate),
        ("feed: classified-frames speedup (x)", ">= 3.0", feed_speedup),
        ("revisit: frames/epoch, diff off", "-", revisit_off_rate),
        ("revisit: frames/epoch, diff on", "-", revisit_on_rate),
        ("revisit: classified-frames speedup (x)", ">= 3.0",
         revisit_speedup),
        ("snapshot recalls (diff hits)", "-",
         feed_on.stats.diff_hits + revisit_on.stats.diff_hits),
        ("verdict mismatches (on vs off)", "0", 0),
    ]
    report_table(paper_vs_measured(
        "Incremental re-classification (frames entering the pipeline)",
        rows,
    ))
    bench_record(
        "serving_incremental_diff",
        feed_frames_per_interaction_off=feed_off_rate,
        feed_frames_per_interaction_on=feed_on_rate,
        feed_classified_speedup=feed_speedup,
        revisit_frames_per_epoch_off=revisit_off_rate,
        revisit_frames_per_epoch_on=revisit_on_rate,
        revisit_classified_speedup=revisit_speedup,
        feed_diff_hits=feed_on.stats.diff_hits,
        revisit_diff_hits=revisit_on.stats.diff_hits,
        sheds=feed_on.stats.shed + revisit_on.stats.shed,
    )
    assert feed_speedup >= 3.0
    assert revisit_speedup >= 3.0
