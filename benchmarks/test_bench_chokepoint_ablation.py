"""§2.2 ablation: decode/raster choke point vs DOM-extension scanning.

Paper argument: the pipeline placement sees every image regardless of
loading mechanism; DOM-based blockers race dynamic injection and miss
CSS-composited resources.
"""

from repro.eval.experiments.chokepoint import run_chokepoint_ablation


def test_chokepoint_coverage(benchmark, report_table):
    result = benchmark.pedantic(
        run_chokepoint_ablation,
        kwargs={"num_sites": 30, "pages_per_site": 2},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["pipeline"] = result.pipeline_coverage
    benchmark.extra_info["extension"] = result.extension_coverage

    assert result.pipeline_coverage == 1.0
    assert result.extension_coverage < 0.9
