"""Figures 6 & 7: EasyList match rates + PERCIVAL replicating EasyList.

Paper: CSS rules match 20.2% of elements, network rules 31.1% of image
requests (Fig 6); PERCIVAL replicates the derived labels with accuracy
96.76%, precision 97.76%, recall 95.72% (Fig 7).
"""

from repro.eval.experiments.easylist_replication import (
    run_easylist_replication_experiment,
)


def test_easylist_replication(benchmark, reference_classifier,
                              report_table):
    result = benchmark.pedantic(
        run_easylist_replication_experiment,
        kwargs={
            "classifier": reference_classifier,
            "num_sites": 60,
            "pages_per_site": 3,
        },
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["accuracy"] = result.metrics.accuracy
    benchmark.extra_info["css_rate"] = result.dataset_stats.css_rate
    benchmark.extra_info["network_rate"] = (
        result.dataset_stats.network_rate
    )

    # Figure 6 shape: match rates in the paper's band
    assert 0.14 <= result.dataset_stats.css_rate <= 0.28
    assert 0.24 <= result.dataset_stats.network_rate <= 0.40
    # Figure 7 shape: high-nineties replication accuracy
    assert result.metrics.accuracy > 0.93
    assert result.metrics.precision > 0.9
    assert result.metrics.recall > 0.9


def test_filter_engine_lookup_throughput(benchmark):
    """Token-indexed rule lookup cost per request (the operation Brave
    shields execute for every subresource)."""
    from repro.filterlist.easylist import default_easylist
    engine = default_easylist()
    urls = [
        "https://ads.doublevision.test/serve/c0001_ab.png",
        "https://cdn.news3.example/img/deadbeef.jpg",
        "https://sponsorly.test/s/c0009_cd.png",
    ]

    def lookup():
        for url in urls:
            engine.check_request(url, "news3.example", "image")

    benchmark(lookup)
