"""Figure 8: validation on the external (Hussain-style) dataset.

Paper: 5,024 images — accuracy 0.877, precision 0.815, recall 0.976,
F1 0.888, model 1.9 MB, 11 ms/image.  Headline shape: recall stays
high out-of-distribution while precision drops.
"""

from repro.eval.experiments.external_dataset import (
    run_external_dataset_experiment,
)


def test_external_dataset(benchmark, reference_classifier, report_table):
    result = benchmark.pedantic(
        run_external_dataset_experiment,
        kwargs={
            "classifier": reference_classifier,
            "sample_size": 1200,
        },
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    benchmark.extra_info["accuracy"] = result.metrics.accuracy
    benchmark.extra_info["recall"] = result.metrics.recall

    assert result.metrics.recall > 0.93
    assert result.metrics.recall > result.metrics.precision
    assert 0.82 < result.metrics.accuracy < 0.97
    assert result.model_size_mb < 2.0
