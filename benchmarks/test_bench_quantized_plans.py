"""Quantized inference plans: size, verdict fidelity, throughput.

Not a paper figure — this regenerates the precision pipeline's own
claims on the trained reference model:

* the int8 weight artifact packs a >= 3x smaller buffer than fp32
  (it is ~3.8x: int8 weights + fp32 biases + per-channel scales),
* the quantized plan's verdicts match the fp32 fast path on the
  calibration set — max P(ad) drift <= the calibration gate's 1e-2
  bound and identical block decisions,
* batched quantized throughput is no slower than the fp32 fast path
  (both run the same fp32 GEMMs; only storage differs),
* ``PERCIVAL_PRECISION=fp32`` reproduces the PR 1 compiled fast path
  and the PR 2 sharded path bit for bit (1e-7 equivalence).

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` runs it in
seconds; ``PERCIVAL_BENCH_ROUNDS`` trims the timing repeats.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core import AdClassifier, InferenceWorkerPool
from repro.eval.reporting import paper_vs_measured
from repro.utils.timing import measure_latency

BATCH = 32
ROUNDS = int(os.environ.get("PERCIVAL_BENCH_ROUNDS", "30"))


def _pinned(reference_classifier, precision):
    """The reference classifier's trained weights at a fixed storage
    precision (shared network, private artifact/plan)."""
    return AdClassifier(
        replace(reference_classifier.config, precision=precision),
        network=reference_classifier.network,
    )


@pytest.mark.bench_smoke
def test_quantized_plans(benchmark, reference_classifier, report_table):
    fp32 = _pinned(reference_classifier, "fp32")
    int8 = _pinned(reference_classifier, "int8")
    assert int8.effective_precision == "int8", (
        "the calibration gate must accept int8 on the trained model"
    )

    # --- artifact size: int8 packs >= 3x smaller ----------------------
    fp32_bytes = fp32.weight_artifact().nbytes
    int8_bytes = int8.weight_artifact().nbytes
    size_ratio = fp32_bytes / int8_bytes
    assert size_ratio >= 3.0

    # --- verdict fidelity on the calibration set ----------------------
    calibration = int8.calibration_batch()
    probs_fp32 = fp32.predict_proba_tensor(calibration)
    probs_int8 = int8.predict_proba_tensor(calibration)
    drift = float(np.abs(probs_fp32 - probs_int8).max())
    threshold = int8.config.ad_threshold
    flips = int(
        ((probs_fp32 >= threshold) != (probs_int8 >= threshold)).sum()
    )
    assert drift <= 1e-2
    assert flips == 0

    # --- batched throughput: quantized no slower than fp32 ------------
    rng = np.random.default_rng(0)
    size = fp32.config.input_size
    batch = rng.standard_normal((BATCH, 4, size, size)).astype(np.float32)
    fp32_plan = fp32.inference_plan
    int8_plan = int8.inference_plan
    assert fp32_plan is not None and int8_plan is not None
    rounds = max(ROUNDS, 5)
    benchmark.pedantic(
        lambda: int8_plan.run(batch),
        rounds=rounds, iterations=1, warmup_rounds=3,
    )
    fp32_ms = measure_latency(
        lambda: fp32_plan.run(batch), repeats=rounds, warmup=3
    )
    int8_ms = measure_latency(
        lambda: int8_plan.run(batch), repeats=rounds, warmup=3
    )
    fp32_throughput = BATCH / fp32_ms * 1000.0
    int8_throughput = BATCH / int8_ms * 1000.0
    throughput_ratio = int8_throughput / fp32_throughput
    # both plans run identical fp32 kernels over identical shapes; the
    # 0.9 floor absorbs timer noise only
    assert throughput_ratio >= 0.9

    rows = [
        ("fp32 artifact (bytes)", "-", fp32_bytes),
        ("int8 artifact (bytes)", "-", int8_bytes),
        ("size ratio (x)", ">= 3", size_ratio),
        ("max calib |p_int8 - p_fp32|", "<= 1e-2", drift),
        ("calib verdict flips", "0", flips),
        ("fp32 plan (img/s)", "-", fp32_throughput),
        ("int8 plan (img/s)", "-", int8_throughput),
        ("int8/fp32 throughput (x)", ">= 0.9", throughput_ratio),
    ]
    report_table(paper_vs_measured(
        f"Quantized plans (batch {BATCH}, {rounds} rounds)", rows,
    ))
    benchmark.extra_info["size_ratio"] = size_ratio
    benchmark.extra_info["calibration_drift"] = drift
    benchmark.extra_info["throughput_ratio"] = throughput_ratio


@pytest.mark.bench_smoke
def test_fp32_precision_reproduces_prior_paths(
    reference_classifier, report_table
):
    """PERCIVAL_PRECISION=fp32 must walk exactly the PR 1/PR 2 code
    paths: the compiled fast path and the sharded worker path both
    agree with a precision-pinned fp32 classifier to 1e-7."""
    fp32 = _pinned(reference_classifier, "fp32")
    rng = np.random.default_rng(1)
    size = fp32.config.input_size
    batch = rng.standard_normal((BATCH, 4, size, size)).astype(np.float32)

    # PR 1 path: the live-view compiled plan (no artifact involved)
    from repro.nn import softmax
    from repro.nn.inference import compile_inference

    plan = compile_inference(fp32.network)
    pr1_probs = softmax(plan.run(batch), axis=1)[:, 1]
    fp32_probs = fp32.predict_proba_tensor(batch)
    pr1_delta = float(np.abs(fp32_probs - pr1_probs).max())
    assert pr1_delta < 1e-7

    # PR 2 path: shared-memory publication + worker-compiled plans
    with InferenceWorkerPool(num_workers=2) as pool:
        pool.publish(fp32)
        sharded = pool.predict_proba(batch)
    pr2_delta = float(np.abs(fp32_probs - sharded).max())
    assert pr2_delta < 1e-7

    rows = [
        ("max |p - p_pr1_plan|", "< 1e-7", pr1_delta),
        ("max |p - p_pr2_sharded|", "< 1e-7", pr2_delta),
    ]
    report_table(paper_vs_measured(
        "fp32 precision: bit-for-bit prior-path equivalence", rows,
    ))
