"""Figure 5 / §4.4: crawler methodology comparison.

Paper: the screenshot crawler races dynamic iframes (white captures)
and inherits EasyList label noise; the pipeline crawler reads decoded
frames (no races) and yields a cleaner dataset; ~15-20% of each crawl
survives dedup.
"""

from repro.eval.experiments.crawler_comparison import (
    run_crawler_comparison_experiment,
)


def test_crawler_comparison(benchmark, report_table):
    result = benchmark.pedantic(
        run_crawler_comparison_experiment,
        kwargs={"num_sites": 8, "pages_per_site": 3, "train_epochs": 8},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    stats = result.traditional_stats
    benchmark.extra_info["white_rate"] = (
        stats.white_screenshots / max(stats.elements_screenshotted, 1)
    )
    # the §4.4 claims
    assert stats.white_screenshots > 0
    assert result.pipeline_stats.white_screenshots == 0
    assert stats.mislabelled > 0
    assert result.pipeline_stats.useful_fraction < 0.75  # dup-dominated
    assert (result.pipeline_model_accuracy
            >= result.traditional_model_accuracy - 0.02)
