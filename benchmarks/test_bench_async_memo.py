"""§1.1 ablation: synchronous vs asynchronous + memoization deployment.

Paper: the alternative low-latency deployment classifies images
asynchronously and memoizes results, "thus speeding up the
classification process" — at the cost of ads flashing before their
verdict lands on first sight.
"""

from repro.eval.experiments.render_performance import run_async_ablation


def test_async_vs_sync(benchmark, reference_classifier, report_table):
    result = benchmark.pedantic(
        run_async_ablation,
        kwargs={"classifier": reference_classifier, "num_pages": 40},
        rounds=1, iterations=1,
    )
    report_table(result.to_table())
    sync_overhead = result.sync_median_ms - result.baseline_median_ms
    async_overhead = result.async_median_ms - result.baseline_median_ms
    benchmark.extra_info["sync_overhead_ms"] = sync_overhead
    benchmark.extra_info["async_overhead_ms"] = async_overhead
    benchmark.extra_info["memo_hits"] = result.memo_hits

    assert async_overhead < sync_overhead / 2
    assert result.memo_hits > 0      # revisits hit the verdict cache
    assert result.flashed_ads > 0    # the async trade-off is real
