"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure and reports the
"paper vs measured" rows.  Tables are printed to stdout and appended to
``benchmarks/output/results_latest.txt`` so a full ``pytest
benchmarks/ --benchmark-only`` run leaves a single consolidated
artifact (the source for EXPERIMENTS.md).

Serving benchmarks additionally record machine-readable metrics via the
``bench_record`` fixture into ``benchmarks/output/BENCH_serving.json``
(one object per benchmark name: throughput, percentiles, sheds, lane
speedups) — the artifact CI uploads so the perf trajectory is diffable
across PRs instead of living in prose tables.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict

import pytest

from repro.core import AdClassifier, get_reference_classifier

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
_OUTPUT_PATH = os.path.join(_OUTPUT_DIR, "results_latest.txt")
_JSON_PATH = os.path.join(_OUTPUT_DIR, "BENCH_serving.json")


@pytest.fixture(scope="session")
def reference_classifier() -> AdClassifier:
    return get_reference_classifier()


@pytest.fixture(scope="session")
def _sink_path() -> str:
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    # Partial runs (scripts/bench_smoke.sh, single-file invocations) set
    # PERCIVAL_BENCH_APPEND so they add their tables without wiping the
    # consolidated artifact of the last full run.
    if os.environ.get("PERCIVAL_BENCH_APPEND") and os.path.exists(
        _OUTPUT_PATH
    ):
        return _OUTPUT_PATH
    with open(_OUTPUT_PATH, "w", encoding="utf-8") as handle:
        handle.write("PERCIVAL reproduction: regenerated tables\n\n")
    return _OUTPUT_PATH


@pytest.fixture()
def report_table(_sink_path: str) -> Callable[[str], None]:
    """Print a result table and append it to the session artifact."""

    def _report(table: str) -> None:
        print("\n" + table)
        with open(_sink_path, "a", encoding="utf-8") as handle:
            handle.write(table + "\n\n")

    return _report


@pytest.fixture(scope="session")
def _bench_json_records() -> Dict[str, dict]:
    """Accumulates machine-readable benchmark records for the session;
    flushed to ``BENCH_serving.json`` when the session ends.  Honors
    ``PERCIVAL_BENCH_APPEND`` the same way the text sink does: partial
    runs merge into (never wipe) the last full run's records."""
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    records: Dict[str, dict] = {}
    if os.environ.get("PERCIVAL_BENCH_APPEND") and os.path.exists(
        _JSON_PATH
    ):
        try:
            with open(_JSON_PATH, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                records.update(loaded)
        except (OSError, ValueError):
            pass  # corrupt artifact: rebuild it from this run
    yield records
    with open(_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture()
def bench_record(
    _bench_json_records: Dict[str, dict],
) -> Callable[..., None]:
    """Record one benchmark's metrics under a stable name.

    ``bench_record("serving_multilane", speedup=1.7, sheds=0)`` — values
    must be JSON-serializable scalars/lists; re-recording a name within
    a session overwrites it (last run wins, matching pytest rerun
    semantics).
    """

    def _record(name: str, **metrics) -> None:
        _bench_json_records[name] = metrics

    return _record
