"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure and reports the
"paper vs measured" rows.  Tables are printed to stdout and appended to
``benchmarks/output/results_latest.txt`` so a full ``pytest
benchmarks/ --benchmark-only`` run leaves a single consolidated
artifact (the source for EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

from repro.core import AdClassifier, get_reference_classifier

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
_OUTPUT_PATH = os.path.join(_OUTPUT_DIR, "results_latest.txt")


@pytest.fixture(scope="session")
def reference_classifier() -> AdClassifier:
    return get_reference_classifier()


@pytest.fixture(scope="session")
def _sink_path() -> str:
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    # Partial runs (scripts/bench_smoke.sh, single-file invocations) set
    # PERCIVAL_BENCH_APPEND so they add their tables without wiping the
    # consolidated artifact of the last full run.
    if os.environ.get("PERCIVAL_BENCH_APPEND") and os.path.exists(
        _OUTPUT_PATH
    ):
        return _OUTPUT_PATH
    with open(_OUTPUT_PATH, "w", encoding="utf-8") as handle:
        handle.write("PERCIVAL reproduction: regenerated tables\n\n")
    return _OUTPUT_PATH


@pytest.fixture()
def report_table(_sink_path: str) -> Callable[[str], None]:
    """Print a result table and append it to the session artifact."""

    def _report(table: str) -> None:
        print("\n" + table)
        with open(_sink_path, "a", encoding="utf-8") as handle:
            handle.write(table + "\n\n")

    return _report
