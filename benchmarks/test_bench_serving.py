"""Micro-batching serving layer vs sequential per-session inference.

Not a paper figure — this regenerates the PR's own claims: coalescing a
200-request mixed-session stream into shard-sized batches through
``repro.serve`` must match sequential per-session ``decide_many`` on
wall-clock throughput (>= 1.0x — in practice the bigger batches win)
while producing **identical verdicts**; the deterministic simulation
must conserve every request (answered + shed == submitted); and the
multi-lane loop over a 2-worker pool must beat the single-lane path by
>= 1.3x in virtual makespan with bitwise-equal verdicts — the claim
measured in virtual time, so it replays exactly on any machine.

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` runs it in
seconds; ``PERCIVAL_BENCH_ROUNDS`` trims the timing repeats.
"""

import asyncio
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import InferenceWorkerPool, PercivalBlocker, ServeSettings
from repro.eval.reporting import paper_vs_measured
from repro.resilience import (
    ChaosEvent,
    ChaosSchedule,
    LadderSettings,
    ResiliencePlane,
)
from repro.serve import (
    ArrivalEvent,
    AsyncServeFront,
    FleetSimulator,
    FleetSpec,
    ServeLoop,
    SLOPolicy,
    TrafficSpec,
    synthesize_traffic,
)

SESSIONS = 25
FRAMES_PER_SESSION = 8  # 200 requests total
ROUNDS = max(int(os.environ.get("PERCIVAL_BENCH_ROUNDS", "7")), 3)
SETTINGS = ServeSettings(max_batch=32, max_wait_ms=2.0, max_depth=512)


@pytest.fixture(scope="module")
def traffic():
    events = synthesize_traffic(TrafficSpec(
        sessions=SESSIONS,
        frames_per_session=FRAMES_PER_SESSION,
        duplicate_fraction=0.3,
        seed=77,
    ))
    assert len(events) == SESSIONS * FRAMES_PER_SESSION
    return events


def _sequential_decisions(classifier, events):
    """The baseline deployment: one ``decide_many`` per page session,
    sessions served one after another (arrival order preserved)."""
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    by_session = {}
    for index, event in enumerate(events):
        by_session.setdefault(event.session_id, []).append(index)
    decisions = [None] * len(events)
    for indices in by_session.values():
        batch = blocker.decide_many([events[i].bitmap for i in indices])
        for position, decision in zip(indices, batch):
            decisions[position] = decision
    return decisions


def _served_decisions(classifier, events):
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    front = AsyncServeFront(blocker, SETTINGS)

    async def drive():
        decisions = await asyncio.gather(*[
            front.submit(event.bitmap, session_id=event.session_id)
            for event in events
        ])
        await front.aclose()
        return decisions

    return asyncio.run(drive()), front


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000.0


@pytest.mark.bench_smoke
def test_served_throughput_and_verdict_equivalence(
    reference_classifier, report_table, bench_record
):
    classifier = reference_classifier
    events = synthesize_traffic(TrafficSpec(
        sessions=SESSIONS,
        frames_per_session=FRAMES_PER_SESSION,
        duplicate_fraction=0.3,
        seed=77,
    ))
    tolerance = classifier.fast_path_tolerance
    # warm the compiled plan so neither path pays first-call compile
    PercivalBlocker(classifier, calibrated_latency_ms=1.0).decide_many(
        [events[0].bitmap] * 4
    )

    sequential_ms = []
    served_ms = []
    front = None
    for _ in range(ROUNDS):
        sequential, elapsed = _timed(
            lambda: _sequential_decisions(classifier, events)
        )
        sequential_ms.append(elapsed)
        (served, front), elapsed = _timed(
            lambda: _served_decisions(classifier, events)
        )
        served_ms.append(elapsed)

    # --- verdicts: identical per request, both paths -------------------
    assert front.stats.conserved()
    assert front.stats.shed == 0
    sequential_p = np.array([d.probability for d in sequential])
    served_p = np.array([d.probability for d in served])
    max_delta = float(np.abs(sequential_p - served_p).max())
    assert max_delta <= tolerance
    assert [d.is_ad for d in sequential] == [d.is_ad for d in served]

    # --- throughput ----------------------------------------------------
    seq_median = float(np.median(sequential_ms))
    srv_median = float(np.median(served_ms))
    speedup = seq_median / srv_median
    requests = len(events)
    rows = [
        ("requests / sessions", "-", f"{requests} / {SESSIONS}"),
        ("serve max_batch / max_wait", "-",
         f"{SETTINGS.max_batch} / {SETTINGS.max_wait_ms} ms"),
        ("sequential decide_many (req/s)", "-",
         requests / seq_median * 1000.0),
        ("served micro-batches (req/s)", "-",
         requests / srv_median * 1000.0),
        ("mean served batch size", "-", front.stats.mean_batch_size),
        ("coalesced + memo duplicates", "-",
         front.stats.coalesced + front.stats.memo_hits),
        ("served speedup (x)", ">= 1.0", speedup),
        ("max |p_served - p_sequential|", f"<= {tolerance:g}", max_delta),
    ]
    report_table(paper_vs_measured(
        f"Serving layer throughput (200-request stream, {ROUNDS} rounds)",
        rows,
    ))
    bench_record(
        "serving_throughput",
        requests=requests,
        sequential_req_per_s=requests / seq_median * 1000.0,
        served_req_per_s=requests / srv_median * 1000.0,
        speedup=speedup,
        mean_batch_size=front.stats.mean_batch_size,
        sheds=front.stats.shed,
        max_probability_delta=max_delta,
    )
    assert speedup >= 1.0


@pytest.mark.bench_smoke
def test_simulated_latency_profile(
    reference_classifier, report_table, traffic, bench_record
):
    """The deterministic virtual-clock profile of the same stream:
    conservation, batching efficiency, and the queue-wait/compute
    split (replays identically on any machine).  Pinned to one lane —
    this is the PR 4 serializing profile the multi-lane bench below is
    measured against, so it must not drift with the environment's
    PERCIVAL_SERVE_LANES."""
    blocker = PercivalBlocker(reference_classifier, calibrated_latency_ms=11.0)
    report = ServeLoop(
        blocker,
        ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=128, lanes=1),
    ).run(traffic)
    stats = report.stats
    # conservation under genuine overload: this trace saturates the
    # 11 ms compute lane, so a few requests shed — explicitly, and the
    # ledger still balances (the virtual clock makes this exact and
    # machine-independent)
    assert stats.conserved()
    assert stats.shed <= 0.05 * stats.submitted
    assert stats.batches < stats.submitted  # batching actually batched
    rows = [
        ("requests", "-", stats.submitted),
        ("shed (explicit backpressure)", "conserved", stats.shed),
        ("batches / mean size", "-",
         f"{stats.batches} / {stats.mean_batch_size:.1f}"),
        ("memo + coalesced hits", "-",
         stats.memo_hits + stats.coalesced),
        ("queue wait p50 / p95 / p99 (ms)", "-",
         f"{stats.queue_wait_ms.p50:.1f} / {stats.queue_wait_ms.p95:.1f}"
         f" / {stats.queue_wait_ms.p99:.1f}"),
        ("service p50 / p95 / p99 (ms)", "-",
         f"{stats.service_ms.p50:.1f} / {stats.service_ms.p95:.1f}"
         f" / {stats.service_ms.p99:.1f}"),
        ("virtual makespan (ms)", "-", report.makespan_ms),
    ]
    report_table(paper_vs_measured(
        "Serving layer: deterministic latency profile", rows
    ))
    bench_record(
        "serving_latency_profile_single_lane",
        requests=stats.submitted,
        sheds=stats.shed,
        batches=stats.batches,
        mean_batch_size=stats.mean_batch_size,
        queue_wait_p50_ms=stats.queue_wait_ms.p50,
        queue_wait_p95_ms=stats.queue_wait_ms.p95,
        queue_wait_p99_ms=stats.queue_wait_ms.p99,
        total_p50_ms=stats.total_ms.p50,
        total_p95_ms=stats.total_ms.p95,
        total_p99_ms=stats.total_ms.p99,
        makespan_ms=report.makespan_ms,
    )


@pytest.mark.bench_smoke
def test_multi_lane_speedup_over_pool(
    reference_classifier, report_table, traffic, bench_record
):
    """The tentpole claim: two lanes over a 2-worker pool beat the
    single-lane serializing loop by >= 1.3x on the 200-request stream.

    Speedup is the ratio of virtual makespans — both runs do the same
    real compute (every flush calls ``decide_many``, sharded across the
    pool), but the discrete-event clock prices lane overlap, so the
    number is exact and machine-independent.  Lane counts are pinned
    (1 vs 2) so the comparison cannot be skewed by the environment's
    PERCIVAL_SERVE_LANES.  Verdicts must agree bit-for-bit: lanes move
    *when* batches compute, never what they conclude.
    """
    # max_depth=256: deep enough that neither lane count sheds, so all
    # 200 verdicts exist in both runs and compare bitwise
    settings = ServeSettings(max_batch=32, max_wait_ms=2.0, max_depth=256)

    def run(lanes: int, pool):
        blocker = PercivalBlocker(
            reference_classifier,
            calibrated_latency_ms=4.0,
            pool=pool,
            shard_min_batch=16,
        )
        report = ServeLoop(
            blocker, replace(settings, lanes=lanes)
        ).run(traffic)
        assert report.stats.conserved()
        assert report.stats.shed == 0
        assert blocker.pool_fallbacks == 0
        return report

    with InferenceWorkerPool(num_workers=2) as pool:
        pool.publish(reference_classifier)
        single = run(1, pool)
        multi = run(2, pool)

    single_p = np.array(
        [r.decision.probability for r in single.results if r.decision]
    )
    multi_p = np.array(
        [r.decision.probability for r in multi.results if r.decision]
    )
    np.testing.assert_array_equal(single_p, multi_p)

    speedup = single.makespan_ms / multi.makespan_ms
    lanes_used = sum(
        1 for busy in multi.stats.lane_busy_ms.values() if busy > 0
    )
    rows = [
        ("requests / pool workers", "-", f"{len(traffic)} / 2"),
        ("single-lane makespan (ms)", "-", single.makespan_ms),
        ("two-lane makespan (ms)", "-", multi.makespan_ms),
        ("lanes actually busy", "2", lanes_used),
        ("single-lane total p99 (ms)", "-", single.stats.total_ms.p99),
        ("two-lane total p99 (ms)", "-", multi.stats.total_ms.p99),
        ("multi-lane speedup (x)", ">= 1.3", speedup),
        ("max |p_2lane - p_1lane|", "0 (bitwise)",
         float(np.abs(single_p - multi_p).max())),
    ]
    report_table(paper_vs_measured(
        "Multi-lane serve loop vs single lane (virtual time)", rows
    ))
    bench_record(
        "serving_multilane_speedup",
        requests=len(traffic),
        pool_workers=2,
        single_lane_makespan_ms=single.makespan_ms,
        two_lane_makespan_ms=multi.makespan_ms,
        speedup=speedup,
        single_lane_p99_ms=single.stats.total_ms.p99,
        two_lane_p99_ms=multi.stats.total_ms.p99,
        sheds=multi.stats.shed,
    )
    assert lanes_used == 2
    assert speedup >= 1.3


@pytest.mark.bench_smoke
def test_fleet_replay_slo_autoscaler(
    reference_classifier, report_table, bench_record
):
    """Fleet simulation: p99 vs offered load across a diurnal day,
    before (lanes pinned at 1) and after (SLO autoscaler may scale to
    4) multi-lane — sheds conserved in both, peak p99 strictly better
    after.  Fully virtual, so the epoch table is a deterministic
    regression artifact."""
    spec = FleetSpec(
        epochs=6,
        base_sessions=4,
        peak_sessions=16,
        frames_per_session=6,
        hot_creative_bias=0.3,
        seed=5,
    )
    settings = ServeSettings(max_batch=16, max_wait_ms=2.0, max_depth=64)

    def replay(max_lanes: int):
        blocker = PercivalBlocker(
            reference_classifier, calibrated_latency_ms=8.0
        )
        # cascade pinned off, like the lane counts: this bench measures
        # the autoscaler, and the environment's PERCIVAL_CASCADE would
        # absorb offered load before the policy ever sees it
        simulator = FleetSimulator(
            blocker,
            settings,
            policy=SLOPolicy(p99_target_ms=30.0, max_lanes=max_lanes),
            cascade=False,
        )
        report = simulator.run(spec)
        assert report.conserved()
        return report

    before = replay(max_lanes=1)
    after = replay(max_lanes=4)
    assert after.offered == before.offered  # same traffic, same seeds
    rows = [
        ("epochs / offered requests", "-",
         f"{spec.epochs} / {before.offered}"),
        ("peak sessions (diurnal)", "-", spec.peak_sessions),
        ("peak p99 before (1 lane, ms)", "-", before.peak_p99_ms),
        ("peak p99 after (autoscaled, ms)", "< before",
         after.peak_p99_ms),
        ("peak lanes the policy reached", "-", after.peak_lanes),
        ("sheds before / after", "conserved",
         f"{before.shed} / {after.shed}"),
    ]
    report_table(paper_vs_measured(
        "Fleet replay: SLO autoscaler vs pinned single lane", rows
    ))
    report_table(after.to_table("Fleet replay (autoscaled epochs)"))
    bench_record(
        "serving_fleet_autoscaler",
        offered=after.offered,
        peak_p99_before_ms=before.peak_p99_ms,
        peak_p99_after_ms=after.peak_p99_ms,
        peak_lanes=after.peak_lanes,
        sheds_before=before.shed,
        sheds_after=after.shed,
    )
    assert after.peak_lanes > 1
    assert after.peak_p99_ms < before.peak_p99_ms
    assert after.shed <= before.shed


@pytest.mark.bench_smoke
def test_chaos_brownout_dwell(
    reference_classifier, report_table, bench_record
):
    """Resilience under a latency storm: a 20x spike pushes the p95
    far past the ladder's SLO, the degradation controller browns out,
    and the storm's end recovers it — all on the virtual clock, so the
    dwell split (ms browned out vs normal) is a deterministic
    regression artifact.  Served verdicts must stay bit-identical to
    the fault-free replay; the dwell numbers are trend-only."""
    rng = np.random.default_rng(47)
    frames = [
        rng.random((12, 14, 4)).astype(np.float32) for _ in range(72)
    ]
    events = [
        ArrivalEvent(
            at_ms=i * 0.5, session_id=f"s{i % 4}", bitmap=frames[i]
        )
        for i in range(48)
    ] + [
        ArrivalEvent(
            at_ms=60.0 + j * 4.0, session_id=f"s{j % 4}",
            bitmap=frames[48 + j],
        )
        for j in range(24)
    ]
    settings = ServeSettings(max_batch=4, max_wait_ms=2.0, max_depth=64,
                             lanes=1)
    schedule = ChaosSchedule([
        ChaosEvent(at_ms=4.0, fault="latency-spike", duration_ms=28.0,
                   magnitude=20.0),
    ])
    ladder = LadderSettings(
        slo_ms=10.0, percentile=95.0, window=8, min_samples=2,
        recover_headroom=0.8, min_dwell_ms=4.0, widen_factor=2.0,
    )

    def run(chaos, resilience):
        blocker = PercivalBlocker(
            reference_classifier, calibrated_latency_ms=2.0
        )
        return ServeLoop(
            blocker, settings, compute_model=lambda n: 2.0,
            chaos=chaos, resilience=resilience,
        ).run(events)

    fault_free = run(chaos=False, resilience=False)
    plane = ResiliencePlane(ladder=ladder)
    stormy = run(chaos=schedule, resilience=plane)

    assert fault_free.stats.conserved()
    assert stormy.stats.conserved()
    baseline = {
        r.request_id: r.decision.probability
        for r in fault_free.results if r.decision is not None
    }
    shaken = {
        r.request_id: r.decision.probability
        for r in stormy.results if r.decision is not None
    }
    for request_id in baseline.keys() & shaken.keys():
        assert baseline[request_id] == shaken[request_id]

    downs = sum(
        1 for t in plane.controller.transitions if t.direction == "down"
    )
    ups = sum(
        1 for t in plane.controller.transitions if t.direction == "up"
    )
    dwell = plane.controller.dwell_ms
    browned_out_ms = sum(
        ms for name, ms in dwell.items() if name != "normal"
    )
    rows = [
        ("requests / chaos events", "-", f"{len(events)} / 1"),
        ("spike magnitude x duration", "-", "20x / 28 ms"),
        ("ladder steps down / up", ">= 1 each", f"{downs} / {ups}"),
        ("dwell normal (virtual ms)", "-", dwell["normal"]),
        ("dwell browned out (virtual ms)", "> 0", browned_out_ms),
        ("fault-free makespan (ms)", "-", fault_free.makespan_ms),
        ("storm makespan (ms)", "-", stormy.makespan_ms),
        ("served verdicts moved", "0 (bitwise)", 0),
    ]
    report_table(paper_vs_measured(
        "Chaos brownout: degradation-ladder dwell (virtual time)", rows
    ))
    bench_record(
        "serving_chaos_brownout",
        requests=len(events),
        transitions_down=downs,
        transitions_up=ups,
        dwell_normal_ms=dwell["normal"],
        dwell_browned_out_ms=browned_out_ms,
        fault_free_makespan_ms=fault_free.makespan_ms,
        storm_makespan_ms=stormy.makespan_ms,
        sheds=stormy.stats.shed,
    )
    assert downs >= 1
    assert ups >= 1
    assert browned_out_ms > 0.0
