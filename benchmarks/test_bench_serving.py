"""Micro-batching serving layer vs sequential per-session inference.

Not a paper figure — this regenerates the PR's own claim: coalescing a
200-request mixed-session stream into shard-sized batches through
``repro.serve`` must match sequential per-session ``decide_many`` on
wall-clock throughput (>= 1.0x — in practice the bigger batches win)
while producing **identical verdicts**, and the deterministic
simulation must conserve every request (answered + shed == submitted).

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` runs it in
seconds; ``PERCIVAL_BENCH_ROUNDS`` trims the timing repeats.
"""

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core import PercivalBlocker, ServeSettings
from repro.eval.reporting import paper_vs_measured
from repro.serve import (
    AsyncServeFront,
    ServeLoop,
    TrafficSpec,
    synthesize_traffic,
)

SESSIONS = 25
FRAMES_PER_SESSION = 8  # 200 requests total
ROUNDS = max(int(os.environ.get("PERCIVAL_BENCH_ROUNDS", "7")), 3)
SETTINGS = ServeSettings(max_batch=32, max_wait_ms=2.0, max_depth=512)


@pytest.fixture(scope="module")
def traffic():
    events = synthesize_traffic(TrafficSpec(
        sessions=SESSIONS,
        frames_per_session=FRAMES_PER_SESSION,
        duplicate_fraction=0.3,
        seed=77,
    ))
    assert len(events) == SESSIONS * FRAMES_PER_SESSION
    return events


def _sequential_decisions(classifier, events):
    """The baseline deployment: one ``decide_many`` per page session,
    sessions served one after another (arrival order preserved)."""
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    by_session = {}
    for index, event in enumerate(events):
        by_session.setdefault(event.session_id, []).append(index)
    decisions = [None] * len(events)
    for indices in by_session.values():
        batch = blocker.decide_many([events[i].bitmap for i in indices])
        for position, decision in zip(indices, batch):
            decisions[position] = decision
    return decisions


def _served_decisions(classifier, events):
    blocker = PercivalBlocker(classifier, calibrated_latency_ms=1.0)
    front = AsyncServeFront(blocker, SETTINGS)

    async def drive():
        decisions = await asyncio.gather(*[
            front.submit(event.bitmap, session_id=event.session_id)
            for event in events
        ])
        await front.aclose()
        return decisions

    return asyncio.run(drive()), front


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000.0


@pytest.mark.bench_smoke
def test_served_throughput_and_verdict_equivalence(
    reference_classifier, report_table
):
    classifier = reference_classifier
    events = synthesize_traffic(TrafficSpec(
        sessions=SESSIONS,
        frames_per_session=FRAMES_PER_SESSION,
        duplicate_fraction=0.3,
        seed=77,
    ))
    tolerance = classifier.fast_path_tolerance
    # warm the compiled plan so neither path pays first-call compile
    PercivalBlocker(classifier, calibrated_latency_ms=1.0).decide_many(
        [events[0].bitmap] * 4
    )

    sequential_ms = []
    served_ms = []
    front = None
    for _ in range(ROUNDS):
        sequential, elapsed = _timed(
            lambda: _sequential_decisions(classifier, events)
        )
        sequential_ms.append(elapsed)
        (served, front), elapsed = _timed(
            lambda: _served_decisions(classifier, events)
        )
        served_ms.append(elapsed)

    # --- verdicts: identical per request, both paths -------------------
    assert front.stats.conserved()
    assert front.stats.shed == 0
    sequential_p = np.array([d.probability for d in sequential])
    served_p = np.array([d.probability for d in served])
    max_delta = float(np.abs(sequential_p - served_p).max())
    assert max_delta <= tolerance
    assert [d.is_ad for d in sequential] == [d.is_ad for d in served]

    # --- throughput ----------------------------------------------------
    seq_median = float(np.median(sequential_ms))
    srv_median = float(np.median(served_ms))
    speedup = seq_median / srv_median
    requests = len(events)
    rows = [
        ("requests / sessions", "-", f"{requests} / {SESSIONS}"),
        ("serve max_batch / max_wait", "-",
         f"{SETTINGS.max_batch} / {SETTINGS.max_wait_ms} ms"),
        ("sequential decide_many (req/s)", "-",
         requests / seq_median * 1000.0),
        ("served micro-batches (req/s)", "-",
         requests / srv_median * 1000.0),
        ("mean served batch size", "-", front.stats.mean_batch_size),
        ("coalesced + memo duplicates", "-",
         front.stats.coalesced + front.stats.memo_hits),
        ("served speedup (x)", ">= 1.0", speedup),
        ("max |p_served - p_sequential|", f"<= {tolerance:g}", max_delta),
    ]
    report_table(paper_vs_measured(
        f"Serving layer throughput (200-request stream, {ROUNDS} rounds)",
        rows,
    ))
    assert speedup >= 1.0


@pytest.mark.bench_smoke
def test_simulated_latency_profile(
    reference_classifier, report_table, traffic
):
    """The deterministic virtual-clock profile of the same stream:
    conservation, batching efficiency, and the queue-wait/compute
    split (replays identically on any machine)."""
    blocker = PercivalBlocker(reference_classifier, calibrated_latency_ms=11.0)
    report = ServeLoop(
        blocker, ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=128)
    ).run(traffic)
    stats = report.stats
    # conservation under genuine overload: this trace saturates the
    # 11 ms compute lane, so a few requests shed — explicitly, and the
    # ledger still balances (the virtual clock makes this exact and
    # machine-independent)
    assert stats.conserved()
    assert stats.shed <= 0.05 * stats.submitted
    assert stats.batches < stats.submitted  # batching actually batched
    rows = [
        ("requests", "-", stats.submitted),
        ("shed (explicit backpressure)", "conserved", stats.shed),
        ("batches / mean size", "-",
         f"{stats.batches} / {stats.mean_batch_size:.1f}"),
        ("memo + coalesced hits", "-",
         stats.memo_hits + stats.coalesced),
        ("queue wait p50 / p95 / p99 (ms)", "-",
         f"{stats.queue_wait_ms.p50:.1f} / {stats.queue_wait_ms.p95:.1f}"
         f" / {stats.queue_wait_ms.p99:.1f}"),
        ("service p50 / p95 / p99 (ms)", "-",
         f"{stats.service_ms.p50:.1f} / {stats.service_ms.p95:.1f}"
         f" / {stats.service_ms.p99:.1f}"),
        ("virtual makespan (ms)", "-", report.makespan_ms),
    ]
    report_table(paper_vs_measured(
        "Serving layer: deterministic latency profile", rows
    ))
