"""Cascade confidence router vs the plain queued serve loop.

The PR's tentpole claim: fronting the serve loop with the
``repro.cascade`` router — filterlist tier, compiled micro-rule tier,
CNN residual — must cut *mean served latency* by >= 3x on synthesized
mixed traffic while changing **zero verdicts**.  Rule hits settle at
arrival time in the virtual clock (no queue entry, no batch slot), so
the win is priced exactly by the discrete-event simulation and the
number replays bit-for-bit on any machine.

Golden-verdict discipline: the cascade-off run is the PR 5 serve loop
untouched (``cascade=False`` pins the pre-cascade path), and every one
of its verdicts must equal the cascade-on verdict for the same request.
Micro rules are compiled from the model's own confident verdicts, and
the healer invalidates any filterlist rule the model disagrees with
before it ever serves, so once healing converges the cascade is a
latency optimization only.

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` runs it in
seconds; the speedup is virtual-time, so PERCIVAL_BENCH_ROUNDS does
not apply (one deterministic replay per side is exact).
"""

import numpy as np
import pytest

from repro.cascade import CascadeRouter
from repro.core import AdClassifier, PercivalBlocker, PercivalConfig, ServeSettings
from repro.eval.reporting import paper_vs_measured
from repro.serve import ServeLoop, TrafficSpec, synthesize_traffic

#: mixed-provenance stream: 6 sites sharing ad networks and a CDN pool,
#: deep enough (384 requests) that compiled micro rules get re-hit
SPEC = TrafficSpec(
    sessions=24,
    frames_per_session=16,
    duplicate_fraction=0.25,
    provenance=True,
    sites=6,
    seed=99,
)
#: single lane + deep queue: no sheds on either side, so all 384
#: verdicts exist in both runs and compare one-for-one
SETTINGS = ServeSettings(max_batch=16, max_wait_ms=4.0, max_depth=512, lanes=1)


def _run(traffic, cascade):
    """One deterministic virtual-clock replay; fresh blocker per side
    so neither run warms the other's decision memo."""
    blocker = PercivalBlocker(
        AdClassifier(PercivalConfig(calibrated_latency_ms=1.0)),
        calibrated_latency_ms=1.0,
    )
    report = ServeLoop(blocker, SETTINGS, cascade=cascade).run(traffic)
    assert report.stats.conserved()
    assert report.stats.shed == 0
    assert report.stats.failed == 0
    return report


@pytest.mark.bench_smoke
def test_cascade_latency_speedup(report_table, bench_record):
    traffic = synthesize_traffic(SPEC)
    assert all(event.provenance is not None for event in traffic)

    off = _run(traffic, cascade=False)
    router = CascadeRouter.with_default_filterlist()
    on = _run(traffic, cascade=router)

    # --- golden verdicts: the cascade changes when, never what --------
    off_verdicts = [(r.request_id, r.decision.is_ad) for r in off.results]
    on_verdicts = [(r.request_id, r.decision.is_ad) for r in on.results]
    assert sorted(off_verdicts) == sorted(on_verdicts)
    assert off.stats.rule_hits == 0  # pinned off really is pre-cascade

    # --- the tentpole ratio (virtual time, machine-independent) -------
    off_mean = float(np.mean([r.latency_ms for r in off.results]))
    on_mean = float(np.mean([r.latency_ms for r in on.results]))
    speedup = off_mean / max(on_mean, 1e-9)

    stats = router.stats
    requests = len(traffic)
    rule_hit_fraction = on.stats.rule_hits / requests
    residual = on.stats.batched_requests / requests
    rows = [
        ("requests / sites", "-", f"{requests} / {SPEC.sites}"),
        ("cascade-off mean total (ms)", "-", off_mean),
        ("cascade-on mean total (ms)", "-", on_mean),
        ("rule hits (no queue entry)", "-", on.stats.rule_hits),
        ("micro / filterlist tier hits", "-",
         f"{stats.micro_hits} / {stats.list_hits}"),
        ("rules compiled / invalidated", "-",
         f"{stats.compiled} / {stats.invalidations}"),
        ("audits (model verify)", "-", stats.audits),
        ("residual CNN fraction", "< 1.0", residual),
        ("verdict mismatches (on vs off)", "0", 0),
        ("cascade latency speedup (x)", ">= 3.0", speedup),
    ]
    report_table(paper_vs_measured(
        "Cascade router vs queued loop (virtual time, 384 requests)",
        rows,
    ))
    bench_record(
        "serving_cascade",
        requests=requests,
        cascade_latency_speedup=speedup,
        off_mean_total_ms=off_mean,
        on_mean_total_ms=on_mean,
        rule_hits=on.stats.rule_hits,
        rule_hit_fraction=rule_hit_fraction,
        residual_cnn_fraction=residual,
        rules_compiled=stats.compiled,
        rules_invalidated=stats.invalidations,
        audits=stats.audits,
        sheds=on.stats.shed,
    )
    assert residual < 1.0
    assert on.stats.rule_hits > 0
    assert speedup >= 3.0
