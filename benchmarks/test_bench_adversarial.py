"""§6 ablation: adversarial evasion and client-side retraining.

Paper: perceptual blockers are exposed to adversarial examples (Tramèr
et al.); the paper sketches in-browser retraining as a mitigation.
Implemented with real gradients: FGSM attack at several budgets, then
adversarial fine-tuning, measuring recall under attack before/after.
"""


from repro.core.adversarial import (
    ArmsRaceResult,
    adversarial_finetune,
    clone_classifier,
    evasion_rate,
)
from repro.data.corpus import CorpusConfig, build_training_corpus

EPSILONS = [0.05, 0.15, 0.3]


def _arms_race(reference_classifier) -> ArmsRaceResult:
    corpus = build_training_corpus(CorpusConfig(
        seed=9, num_ads=200, num_nonads=200,
        input_size=reference_classifier.config.input_size,
    ))
    defended = clone_classifier(reference_classifier)
    ads = corpus.images[corpus.labels == 1][:60]

    undefended = [
        evasion_rate(defended, ads, eps, steps=10) for eps in EPSILONS
    ]
    adversarial_finetune(
        defended, corpus.images, corpus.labels,
        epsilon=max(EPSILONS), epochs=2,
    )
    defended_reports = [
        evasion_rate(defended, ads, eps, steps=10) for eps in EPSILONS
    ]
    return ArmsRaceResult(
        epsilons=EPSILONS, undefended=undefended,
        defended=defended_reports,
    )


def test_adversarial_arms_race(benchmark, reference_classifier,
                               report_table):
    result = benchmark.pedantic(
        _arms_race, args=(reference_classifier,), rounds=1, iterations=1,
    )
    report_table(result.to_table())
    worst = result.undefended[-1]
    defended_worst = result.defended[-1]
    benchmark.extra_info["undefended_evasion"] = worst.evasion_rate
    benchmark.extra_info["defended_evasion"] = defended_worst.evasion_rate

    # the attack works on the undefended model...
    assert worst.evasion_rate > 0.1
    # ...and adversarial retraining recovers recall under attack
    assert (defended_worst.perturbed_recall
            >= worst.perturbed_recall)
