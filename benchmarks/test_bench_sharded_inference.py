"""Multiprocess sharded inference vs the single-process fast path.

Not a paper figure — this regenerates the PR's own claim: scattering a
large (>= 32 frame) memo-miss batch across the worker pool must beat
the single-process batched fast path on multi-core hardware, while
matching the reference layer-by-layer path's probabilities within
1e-5.

The equivalence assertion always runs.  The throughput assertion needs
a second core (process-level sharding cannot beat the serial path on
one core, it only adds IPC) and is skipped below that.  CI runs this
with BLAS pinned to one thread (``OPENBLAS_NUM_THREADS=1``) so the
comparison measures sharding, not BLAS thread contention.

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` runs it in
seconds; ``PERCIVAL_BENCH_ROUNDS`` trims the timing repeats.
"""

import os

import numpy as np
import pytest

from repro.core import InferenceWorkerPool
from repro.eval.reporting import paper_vs_measured
from repro.utils.timing import measure_latency

BATCH = 64
ROUNDS = int(os.environ.get("PERCIVAL_BENCH_ROUNDS", "30"))
CORES = os.cpu_count() or 1
WORKERS = min(max(CORES - 1, 2), 4)


def _batch(classifier, count):
    rng = np.random.default_rng(0)
    size = classifier.config.input_size
    return rng.standard_normal((count, 4, size, size)).astype(np.float32)


@pytest.mark.bench_smoke
def test_sharded_equivalence(reference_classifier, report_table):
    classifier = reference_classifier
    batch = _batch(classifier, BATCH)
    tolerance = classifier.fast_path_tolerance
    reference = classifier.predict_proba_tensor(batch, fast_path=False)
    with InferenceWorkerPool(num_workers=2) as pool:
        pool.publish(classifier)
        sharded = pool.predict_proba(batch)
    max_delta = float(np.abs(sharded - reference).max())
    # workers compile from the very bytes the parent published, so the
    # sharded path must also match the parent's *fast path* — to fp32
    # resolution, at every storage precision
    fast = classifier.predict_proba_tensor(batch)
    assert np.allclose(sharded, fast, atol=1e-7, rtol=0.0)
    rows = [
        ("frames scattered", "-", BATCH),
        ("workers", "-", 2),
        ("max |p_sharded - p_ref|", f"< {tolerance:g}", max_delta),
    ]
    report_table(paper_vs_measured("Sharded inference: reference equivalence", rows))
    assert max_delta < tolerance


@pytest.mark.bench_smoke
@pytest.mark.skipif(CORES < 2, reason="sharded throughput needs a second core")
def test_sharded_throughput(benchmark, reference_classifier, report_table):
    classifier = reference_classifier
    batch = _batch(classifier, BATCH)
    rounds = max(ROUNDS, 5)

    serial_ms = measure_latency(
        lambda: classifier.predict_proba_tensor(batch, batch_size=BATCH),
        repeats=rounds,
        warmup=2,
    )
    with InferenceWorkerPool(num_workers=WORKERS) as pool:
        pool.publish(classifier)
        benchmark.pedantic(
            lambda: pool.predict_proba(batch),
            rounds=rounds,
            iterations=1,
            warmup_rounds=2,
        )
        sharded_ms = measure_latency(
            lambda: pool.predict_proba(batch), repeats=rounds, warmup=2
        )

    speedup = serial_ms / sharded_ms
    serial_throughput = BATCH / serial_ms * 1000.0
    sharded_throughput = BATCH / sharded_ms * 1000.0
    rows = [
        ("cores / workers", "-", f"{CORES} / {WORKERS}"),
        ("single-process batched (img/s)", "-", serial_throughput),
        ("sharded pool (img/s)", "-", sharded_throughput),
        ("sharded speedup (x)", ">= 1.05", speedup),
    ]
    title = f"Sharded inference throughput (batch {BATCH}, {rounds} rounds)"
    report_table(paper_vs_measured(title, rows))
    benchmark.extra_info["sharded_speedup"] = speedup
    assert speedup >= 1.05
