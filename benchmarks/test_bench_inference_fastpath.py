"""Compiled inference fast path: reference vs fast-path latency.

Not a paper figure — this regenerates the PR's own claim: routing
eval-mode scoring through the compiled plan (fused cache-free kernels,
1x1 GEMM shortcut, batched blocker verdicts) must deliver >= 2x
single-image latency and >= 4x batched throughput over the reference
layer-by-layer path, while matching its probabilities within 1e-5.

Marked ``bench_smoke`` so ``scripts/bench_smoke.sh`` can run it alone
in seconds; ``PERCIVAL_BENCH_ROUNDS`` trims the timing repeats further.
"""

import os

import numpy as np
import pytest

from repro.eval.reporting import paper_vs_measured
from repro.utils.timing import measure_latency

BATCH = 32
ROUNDS = int(os.environ.get("PERCIVAL_BENCH_ROUNDS", "30"))


@pytest.mark.bench_smoke
def test_inference_fastpath(benchmark, reference_classifier, report_table):
    classifier = reference_classifier
    network = classifier.network
    plan = classifier.inference_plan
    assert plan is not None, "PercivalNet must compile to a plan"

    rng = np.random.default_rng(0)
    size = classifier.config.input_size
    single = rng.standard_normal((1, 4, size, size)).astype(np.float32)
    batch = rng.standard_normal((BATCH, 4, size, size)).astype(np.float32)

    # numerical equivalence: fast-path probabilities match reference
    # (the tolerance tracks the storage precision in effect — fp32 is
    # 1e-5 as before, quantized storage widens to the gated bound)
    tolerance = classifier.fast_path_tolerance
    probs_ref = classifier.predict_proba_tensor(batch, fast_path=False)
    probs_fast = classifier.predict_proba_tensor(batch, fast_path=True)
    max_delta = float(np.abs(probs_ref - probs_fast).max())
    assert max_delta < tolerance

    # single-image latency: reference training graph vs compiled plan
    # (benchmark.pedantic records the fast path for the pytest-benchmark
    # table; the speedup assertion uses the same median-of-rounds
    # measurement for both sides)
    benchmark.pedantic(
        lambda: plan.run(single),
        rounds=max(ROUNDS, 5), iterations=1, warmup_rounds=3,
    )
    ref_single_ms = measure_latency(
        lambda: network.forward(single), repeats=ROUNDS, warmup=3
    )
    fast_single_ms = measure_latency(
        lambda: plan.run(single), repeats=ROUNDS, warmup=3
    )
    single_speedup = ref_single_ms / fast_single_ms

    # batched throughput: per-frame reference loop (the pre-fast-path
    # blocker hot path) vs one batched plan run
    def reference_loop() -> None:
        for index in range(BATCH):
            network.forward(batch[index:index + 1])

    ref_batch_ms = measure_latency(
        reference_loop, repeats=max(ROUNDS // 6, 3), warmup=1
    )
    fast_batch_ms = measure_latency(
        lambda: plan.run(batch), repeats=ROUNDS, warmup=2
    )
    batch_speedup = ref_batch_ms / fast_batch_ms
    ref_throughput = BATCH / ref_batch_ms * 1000.0
    fast_throughput = BATCH / fast_batch_ms * 1000.0

    rows = [
        ("single-image reference (ms)", "-", ref_single_ms),
        ("single-image fast path (ms)", "-", fast_single_ms),
        ("single-image speedup (x)", ">= 2", single_speedup),
        ("batched reference (img/s)", "-", ref_throughput),
        ("batched fast path (img/s)", "-", fast_throughput),
        ("batched speedup (x)", ">= 4", batch_speedup),
        ("max |p_fast - p_ref|", f"< {tolerance:g}", max_delta),
    ]
    report_table(paper_vs_measured(
        "Compiled inference fast path (batch "
        f"{BATCH}, {ROUNDS} rounds)", rows,
    ))
    benchmark.extra_info["single_speedup"] = single_speedup
    benchmark.extra_info["batch_speedup"] = batch_speedup
    benchmark.extra_info["max_prob_delta"] = max_delta

    assert single_speedup >= 2.0
    assert batch_speedup >= 4.0
